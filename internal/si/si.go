// Package si implements the Subjective Interestingness measure of §II-C
// of the paper: SI = IC / DL, where the Information Content (IC) of a
// pattern is its negative log probability under the current background
// distribution and the Description Length (DL) models the user's effort
// to assimilate the pattern.
//
// For location patterns the subgroup mean is normal under the background
// model and the IC is available in closed form (Eq. 13, with the
// corrected 1/|I| covariance factor — see DESIGN.md §2). For spread
// patterns the subgroup variance along w is a positively weighted sum of
// χ²₁ variables; its density is approximated by the three-moment affine
// chi-squared fit of Zhang (2005) (Eqs. 15–19, with the corrected log α
// Jacobian term).
package si

import (
	"errors"
	"math"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/background"
	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/mat"
	"repro/internal/stats"
)

// Params hold the description length coefficients: DL = γ·|C| + η for a
// location pattern with |C| conditions, plus 1 for a spread pattern
// (it has one extra term, the direction w).
type Params struct {
	Gamma float64
	Eta   float64
}

// Default returns the paper's stated defaults (γ=0.1, η=1). Note that
// Table I of the paper is reproducible only with γ=0.5 (see DESIGN.md
// §2); the Table I experiment overrides Gamma accordingly.
func Default() Params { return Params{Gamma: 0.1, Eta: 1} }

// DL returns the description length of a pattern with numConds
// conditions; spread patterns pay one extra unit.
func (p Params) DL(numConds int, spread bool) float64 {
	dl := p.Gamma*float64(numConds) + p.Eta
	if spread {
		dl++
	}
	return dl
}

// ErrDegenerate is returned when the background marginal needed for an
// IC is numerically singular.
var ErrDegenerate = errors.New("si: degenerate background marginal")

// LocationIC computes the IC of a location pattern (Eq. 13): the
// negative log density of the observed subgroup mean yhat under the
// background marginal of f_I(Y), which is N(µ_I, Σ_I) with
// µ_I = Σ_{i∈I}µᵢ/|I| and Σ_I = Σ_{i∈I}Σᵢ/|I|².
func LocationIC(m background.Reader, ext *bitset.Set, yhat mat.Vec) (float64, error) {
	muI, covI, err := m.SubgroupMeanMarginal(ext)
	if err != nil {
		return 0, err
	}
	return gaussianNegLogDensity(yhat, muI, covI)
}

// LocationSI computes SI = IC/DL for a location pattern with numConds
// conditions in its intention.
func LocationSI(m background.Reader, ext *bitset.Set, yhat mat.Vec, numConds int, p Params) (si, ic float64, err error) {
	ic, err = LocationIC(m, ext, yhat)
	if err != nil {
		return 0, 0, err
	}
	return ic / p.DL(numConds, false), ic, nil
}

func gaussianNegLogDensity(x, mu mat.Vec, cov *mat.Dense) (float64, error) {
	chol, err := mat.NewCholesky(cov)
	if err != nil {
		return 0, ErrDegenerate
	}
	d := len(mu)
	diff := x.Sub(mu)
	mahal := chol.MahalanobisSq(diff, diff)
	return 0.5 * (float64(d)*math.Log(2*math.Pi) + chol.LogDet() + mahal), nil
}

// SpreadMoments summarises the three-moment chi-squared approximation:
// g ≈ α·χ²_m + β (Eq. 18).
type SpreadMoments struct {
	Alpha, Beta, M float64
	A1, A2, A3     float64 // moment sums Σᵢ aᵢᵏ, exposed for the optimizer
}

// Moments computes the approximation coefficients from the per-group
// spread statistics returned by the background model: with
// aᵢ = wᵀΣᵢw/|I| (constant within a group),
//
//	α = A3/A2,  β = A1 − A2²/A3,  m = A2³/A3²,  Aₖ = Σ_{i∈I} aᵢᵏ.
func Moments(gs []background.GroupStats, total int) SpreadMoments {
	inv := 1 / float64(total)
	var a1, a2, a3 float64
	for _, g := range gs {
		a := g.S * inv
		c := float64(g.Count)
		a1 += c * a
		a2 += c * a * a
		a3 += c * a * a * a
	}
	return MomentsFromSums(a1, a2, a3)
}

// MomentsFromSums builds the three-moment fit directly from the moment
// sums A₁..A₃ — the form the spread optimizer uses, whose evaluation
// engine maintains the sums itself (from precomputed quadratic forms)
// rather than through per-group GroupStats.
func MomentsFromSums(a1, a2, a3 float64) SpreadMoments {
	return SpreadMoments{
		Alpha: a3 / a2,
		Beta:  a1 - a2*a2/a3,
		M:     a2 * a2 * a2 / (a3 * a3),
		A1:    a1, A2: a2, A3: a3,
	}
}

// minU floors the standardized statistic (ĝ−β)/α so the IC stays finite
// when the observation falls (just) outside the approximating support —
// a known artifact of the three-moment fit that the paper does not
// discuss; clamping preserves the ranking ("impossibly small variance"
// scores as extremely, but finitely, surprising).
const minU = 1e-12

// SpreadICFromMoments evaluates the spread IC (corrected Eq. 19) for an
// observed variance ghat:
//
//	IC = (m/2)·ln2 + lnΓ(m/2) + ln α − (m/2−1)·ln u + u/2,  u = (ĝ−β)/α.
func SpreadICFromMoments(sm SpreadMoments, ghat float64) float64 {
	u := (ghat - sm.Beta) / sm.Alpha
	if u < minU {
		u = minU
	}
	lg, _ := math.Lgamma(sm.M / 2)
	return sm.M/2*math.Ln2 + lg + math.Log(sm.Alpha) -
		(sm.M/2-1)*math.Log(u) + u/2
}

// MomentsNoncentral computes the three-moment fit when the per-point
// means are NOT pinned to the center — i.e. when committed patterns
// overlap, so (yᵢ−ŷ_I)ᵀw follows a noncentral χ² after standardization
// (footnote 3 of the paper, which falls back to the central
// approximation there). With aᵢ = wᵀΣᵢw/|I| and noncentrality
// λᵢ = (wᵀ(ŷ_I−µᵢ))²/(wᵀΣᵢw), the first three cumulants of
// g = Σ aᵢ·χ²₁(λᵢ) are
//
//	κ₁ = Σ aᵢ(1+λᵢ),  κ₂ = 2Σ aᵢ²(1+2λᵢ),  κ₃ = 8Σ aᵢ³(1+3λᵢ),
//
// and matching them to α·χ²_m + β gives α = κ₃/(4κ₂), m = κ₂/(2α²),
// β = κ₁ − αm. With all λᵢ = 0 this reduces exactly to Eq. 18. This is
// an extension beyond the paper: it makes the spread IC accurate in the
// overlapping-pattern regime.
func MomentsNoncentral(gs []background.GroupStats, total int) SpreadMoments {
	inv := 1 / float64(total)
	var k1, k2, k3, a1, a2, a3 float64
	for _, g := range gs {
		a := g.S * inv
		lam := g.MeanShift * g.MeanShift / g.S
		c := float64(g.Count)
		k1 += c * a * (1 + lam)
		k2 += 2 * c * a * a * (1 + 2*lam)
		k3 += 8 * c * a * a * a * (1 + 3*lam)
		a1 += c * a
		a2 += c * a * a
		a3 += c * a * a * a
	}
	alpha := k3 / (4 * k2)
	m := k2 / (2 * alpha * alpha)
	return SpreadMoments{
		Alpha: alpha, Beta: k1 - alpha*m, M: m,
		A1: a1, A2: a2, A3: a3,
	}
}

// SpreadIC computes the IC of a spread pattern for direction w and
// observed variance ghat around center (the subgroup mean).
func SpreadIC(m background.Reader, ext *bitset.Set, w, center mat.Vec, ghat float64) (float64, error) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, background.ErrNoPoints
	}
	gs := m.SpreadStats(ext, w, center)
	return SpreadICFromMoments(Moments(gs, cnt), ghat), nil
}

// SpreadICNoncentral is SpreadIC with the noncentral three-moment fit,
// which stays accurate when committed patterns overlap and the
// per-point means deviate from the center.
func SpreadICNoncentral(m background.Reader, ext *bitset.Set, w, center mat.Vec, ghat float64) (float64, error) {
	cnt := ext.Count()
	if cnt == 0 {
		return 0, background.ErrNoPoints
	}
	gs := m.SpreadStats(ext, w, center)
	return SpreadICFromMoments(MomentsNoncentral(gs, cnt), ghat), nil
}

// SpreadApproxCDF evaluates the fitted distribution function
// P(g ≤ x) = P(χ²_m ≤ (x−β)/α) for either moment fit — used for
// goodness-of-fit tests and CDF plots.
func SpreadApproxCDF(sm SpreadMoments, x float64) float64 {
	u := (x - sm.Beta) / sm.Alpha
	if u <= 0 {
		return 0
	}
	return stats.ChiSquaredCDF(u, sm.M)
}

// SpreadSI computes SI = IC/DL for a spread pattern.
func SpreadSI(m background.Reader, ext *bitset.Set, w, center mat.Vec, ghat float64, numConds int, p Params) (si, ic float64, err error) {
	ic, err = SpreadIC(m, ext, w, center, ghat)
	if err != nil {
		return 0, 0, err
	}
	return ic / p.DL(numConds, true), ic, nil
}

// SpreadICGradientTerms returns the IC and its partial derivatives with
// respect to the observed variance ĝ and the moment sums A1, A2, A3.
// The spread optimizer chains these with ∇_w ĝ and ∇_w Aₖ to obtain the
// analytic Riemannian gradient (the derivative the paper computes but
// omits "due to lack of space").
func SpreadICGradientTerms(sm SpreadMoments, ghat float64) (ic, dG, dA1, dA2, dA3 float64) {
	alpha, beta, m := sm.Alpha, sm.Beta, sm.M
	u := (ghat - beta) / alpha
	clamped := false
	if u < minU {
		u = minU
		clamped = true
	}
	lg, _ := math.Lgamma(m / 2)
	ic = m/2*math.Ln2 + lg + math.Log(alpha) - (m/2-1)*math.Log(u) + u/2

	// Partials of IC w.r.t. (ĝ, α, β, m).
	var dGhat, dAlpha, dBeta, dM float64
	if clamped {
		// In the clamped region the density is flat in ĝ and β; keep only
		// the α and m sensitivities that remain well-defined.
		dGhat = 0
		dBeta = 0
	} else {
		dGhat = 1/(2*alpha) - (m/2-1)/(ghat-beta)
		dBeta = -dGhat
	}
	dAlpha = (m/2)/alpha - u/(2*alpha)
	dM = math.Ln2/2 + stats.Digamma(m/2)/2 - math.Log(u)/2

	// Chain to the moment sums.
	a2, a3 := sm.A2, sm.A3
	dAlphaA2 := -a3 / (a2 * a2)
	dAlphaA3 := 1 / a2
	dBetaA1 := 1.0
	dBetaA2 := -2 * a2 / a3
	dBetaA3 := a2 * a2 / (a3 * a3)
	dMA2 := 3 * a2 * a2 / (a3 * a3)
	dMA3 := -2 * a2 * a2 * a2 / (a3 * a3 * a3)

	dG = dGhat
	dA1 = dBeta * dBetaA1
	dA2 = dAlpha*dAlphaA2 + dBeta*dBetaA2 + dM*dMA2
	dA3 = dAlpha*dAlphaA3 + dBeta*dBetaA3 + dM*dMA3
	return ic, dG, dA1, dA2, dA3
}

// LocationScorer scores candidate subgroup extensions during beam
// search. It snapshots the model's groups and dense group labeling once
// and scores each candidate with one fused trailing-zeros pass over the
// extension that accumulates the per-group counts *and* the target sum
// simultaneously — O(n/64 + |I|) regardless of how many groups the
// committed patterns have split the model into, where the former
// per-group AND-popcount walk was O(#groups · n/64). A shared-Σ fast
// path (valid whenever only location patterns have been committed,
// which Theorem 1 guarantees keeps all covariances equal) avoids a d³
// factorization per candidate.
//
// The scorer itself is safe for concurrent use (Score draws reusable
// scratch from an internal pool); the engine instead calls NewWorker
// for a per-goroutine context whose steady-state scoring path performs
// zero heap allocations.
type LocationScorer struct {
	Y *mat.Dense
	P Params

	d      int
	groups []*background.Group
	labels []int32
	// mus is the group means flattened into one contiguous G×d array
	// (mus[g*d:(g+1)*d] is group g's µ): the µ_I accumulation loop runs
	// over it cache-linearly with no per-group pointer chase.
	mus mat.Vec

	shared  *mat.Cholesky // non-nil → all groups share Sigma
	logDetS float64       // log|Σ| of the shared matrix

	// Bound-pruning state (see NewBoundWorker), built lazily once and
	// shared read-only by all bound workers: per-point residual
	// magnitudes against each point's own background group mean.
	boundOnce   sync.Once
	boundVals   []float64
	boundInvVar float64 // d == 1 only: 1/Σ, the shared scalar precision

	pool sync.Pool // of *LocationWorker, for the concurrent Score path
}

// Interface conformance with the evaluation engine: workers score from
// pooled scratch, stat workers score depth-1 candidates from the
// engine's precomputed sufficient statistics, and the labeling lets the
// engine build that table.
var (
	_ engine.WorkerScorer     = (*LocationScorer)(nil)
	_ engine.GroupLabeler     = (*LocationScorer)(nil)
	_ engine.BoundScorer      = (*LocationScorer)(nil)
	_ engine.StatScorerWorker = (*LocationWorker)(nil)
)

// NewLocationScorer prepares a scorer against the given model state —
// typically a published *background.ModelVersion, so scoring proceeds
// concurrently with commits. The scorer must be rebuilt to observe a
// newer version. Groups and labels are shared, not copied: commits
// never mutate published state in place (copy-on-write), so the
// references stay valid and immutable for the scorer's lifetime.
func NewLocationScorer(m background.Reader, y *mat.Dense, p Params) (*LocationScorer, error) {
	s := &LocationScorer{
		Y: y, P: p, d: m.D(),
		groups: m.Groups(),
		labels: m.Labels(),
	}
	s.mus = make(mat.Vec, len(s.groups)*s.d)
	for gi, g := range s.groups {
		copy(s.mus[gi*s.d:(gi+1)*s.d], g.Mu)
	}
	chol, ok, err := m.DistinctSigmaChols()
	if err != nil {
		return nil, err
	}
	if ok {
		s.shared = chol
		s.logDetS = chol.LogDet()
	}
	s.pool.New = func() any { return s.newWorker() }
	return s, nil
}

// NumGroups implements engine.GroupLabeler.
func (s *LocationScorer) NumGroups() int { return len(s.groups) }

// Labels implements engine.GroupLabeler.
func (s *LocationScorer) Labels() []int32 { return s.labels }

// NewWorker implements engine.WorkerScorer.
func (s *LocationScorer) NewWorker() engine.ScorerWorker { return s.newWorker() }

// Score evaluates a candidate extension with numConds conditions,
// returning its SI, IC and subgroup mean. ok=false marks candidates that
// cannot be scored (empty extension or degenerate marginal). Safe for
// concurrent use; the mean is freshly allocated. Hot paths should use a
// worker instead, whose returned mean is reusable scratch.
func (s *LocationScorer) Score(ext *bitset.Set, numConds int) (si, ic float64, yhat mat.Vec, ok bool) {
	w := s.pool.Get().(*LocationWorker)
	si, ic, yhat, ok = w.Score(ext, numConds)
	if ok {
		yhat = yhat.Clone()
	}
	s.pool.Put(w)
	return si, ic, yhat, ok
}

// LocationWorker is a single-goroutine scoring context: all
// intermediates (group counts, ŷ, µ_I, the solve and — on the general
// path — the covariance accumulator and its factorization) live in
// worker-owned scratch, so steady-state scoring allocates nothing.
type LocationWorker struct {
	s      *LocationScorer
	counts []int32
	// touched marks the groups the current extension intersects (bit g
	// set ⟺ counts[g] > 0), so finish visits only those groups — in
	// ascending order, for free — instead of scanning all #groups count
	// slots per candidate.
	touched []uint64
	yhat    mat.Vec
	muI     mat.Vec
	diff    mat.Vec
	sol     mat.Vec
	cov     *mat.Dense    // general path only
	chol    *mat.Cholesky // general path only; refactorized in place
}

func (s *LocationScorer) newWorker() *LocationWorker {
	w := &LocationWorker{
		s:       s,
		counts:  make([]int32, len(s.groups)),
		touched: make([]uint64, (len(s.groups)+63)/64),
		yhat:    make(mat.Vec, s.d),
		muI:     make(mat.Vec, s.d),
		diff:    make(mat.Vec, s.d),
		sol:     make(mat.Vec, s.d),
	}
	if s.shared == nil {
		w.cov = mat.NewDense(s.d, s.d)
		w.chol = &mat.Cholesky{}
	}
	return w
}

// Score implements engine.ScorerWorker: the fused single-pass scoring
// kernel. The returned mean is worker scratch, valid until the next
// call.
func (w *LocationWorker) Score(ext *bitset.Set, numConds int) (si, ic float64, yhat mat.Vec, ok bool) {
	cnt := w.accumulate(ext)
	if cnt == 0 {
		return 0, 0, nil, false
	}
	return w.finish(w.counts, cnt, numConds, w.touched)
}

// ScoreStats implements engine.StatScorerWorker: scoring from
// precomputed sufficient statistics (depth-1 table), no bitset pass.
// Results are bit-identical to Score on the matching extension because
// the statistics accumulate in the same order the fused pass does.
func (w *LocationWorker) ScoreStats(counts []int32, ysum mat.Vec, size, numConds int) (si, ic float64, yhat mat.Vec, ok bool) {
	if size == 0 {
		return 0, 0, nil, false
	}
	copy(w.yhat, ysum)
	return w.finish(counts, size, numConds, nil)
}

// accumulate runs the fused pass: one trailing-zeros walk over ext
// bumping the label-indexed group counts and summing target rows into
// w.yhat, returning |ext|. The specializations keep the per-bit work
// minimal for the two axes that matter: a fresh model has a single
// group (counts collapse to the popcount) and single-target datasets
// collapse the row loop to one scalar add. For few-group models a
// second axis applies: per-group counts come from AND-popcounts of the
// group membership bitsets (#groups·n/64 word operations), which beats
// carrying the label lookup, count bump and touched-bitmap update
// through every member of the walk — the walk then only sums target
// rows. The counts are the same integers either way, so finish sees
// identical inputs and the scored floats are unchanged.
func (w *LocationWorker) accumulate(ext *bitset.Set) int {
	// w.counts and w.touched are all-zero here: finish clears every slot
	// it visited, so no O(#groups) memset is needed per candidate.
	s := w.s
	d := s.d
	single := len(s.groups) == 1
	// plain: no per-member label bookkeeping needed during the walk —
	// either there is one group, or the counts were already computed by
	// the AND-popcount pass below.
	plain := single
	if !single {
		cnt := ext.Count()
		if cnt == 0 {
			return 0
		}
		if len(s.groups)*len(ext.Words()) < cnt*4 {
			plain = true
			for gi, g := range s.groups {
				if c := g.Members.IntersectCount(ext); c != 0 {
					w.counts[gi] = int32(c)
					w.touched[gi>>6] |= 1 << (uint(gi) & 63)
				}
			}
		}
	}
	// Each walk variant is its own small function so the hot loops get
	// clean register allocation instead of sharing one sprawling frame.
	var cnt int
	switch {
	case d == 1 && plain:
		cnt = w.sumD1Plain(ext)
	case d == 1:
		cnt = w.sumD1Labeled(ext)
	case plain && d <= 5:
		cnt = w.sumRowsSmallD(ext)
	case plain:
		cnt = w.sumRowsPlain(ext)
	default:
		cnt = w.sumRowsLabeled(ext)
	}
	if single && cnt > 0 {
		w.counts[0] = int32(cnt)
		w.touched[0] = 1
	}
	return cnt
}

// sumD1Plain sums the single target column over ext into w.yhat.
func (w *LocationWorker) sumD1Plain(ext *bitset.Set) int {
	data := w.s.Y.Data
	var sum float64
	cnt := 0
	for wi, word := range ext.Words() {
		base := wi * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			sum += data[base+b]
			cnt++
		}
	}
	w.yhat[0] = sum
	return cnt
}

// sumD1Labeled is sumD1Plain fused with the per-member group-count
// bookkeeping (label lookup, count bump, touched bitmap).
func (w *LocationWorker) sumD1Labeled(ext *bitset.Set) int {
	data := w.s.Y.Data
	labels := w.s.labels
	counts := w.counts
	touched := w.touched
	var sum float64
	cnt := 0
	for wi, word := range ext.Words() {
		base := wi * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			i := base + b
			lab := labels[i]
			counts[lab]++
			touched[lab>>6] |= 1 << (uint(lab) & 63)
			sum += data[i]
			cnt++
		}
	}
	w.yhat[0] = sum
	return cnt
}

// sumRowsPlain sums the target rows of ext into w.yhat, no group
// bookkeeping.
func (w *LocationWorker) sumRowsPlain(ext *bitset.Set) int {
	data := w.s.Y.Data
	d := w.s.d
	yhat := w.yhat
	for j := range yhat {
		yhat[j] = 0
	}
	cnt := 0
	for wi, word := range ext.Words() {
		base := wi * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			i := base + b
			row := data[i*d : i*d+d]
			for j, v := range row {
				yhat[j] += v
			}
			cnt++
		}
	}
	return cnt
}

// sumRowsLabeled is sumRowsPlain fused with the per-member group-count
// bookkeeping — the many-groups path where AND-popcounts would cost
// more than the labels.
func (w *LocationWorker) sumRowsLabeled(ext *bitset.Set) int {
	data := w.s.Y.Data
	labels := w.s.labels
	counts := w.counts
	touched := w.touched
	d := w.s.d
	yhat := w.yhat
	for j := range yhat {
		yhat[j] = 0
	}
	cnt := 0
	for wi, word := range ext.Words() {
		base := wi * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			i := base + b
			lab := labels[i]
			counts[lab]++
			touched[lab>>6] |= 1 << (uint(lab) & 63)
			row := data[i*d : i*d+d]
			for j, v := range row {
				yhat[j] += v
			}
			cnt++
		}
	}
	return cnt
}

// sumRowsSmallD sums the target rows of ext into w.yhat for 2 ≤ d ≤ 5
// with fixed-width unrolled accumulators. Each yhat component receives
// exactly the adds of the generic row loop in the same ascending member
// order, so the result is bit-identical.
func (w *LocationWorker) sumRowsSmallD(ext *bitset.Set) int {
	data := w.s.Y.Data
	d := w.s.d
	yhat := w.yhat
	cnt := 0
	var s0, s1, s2, s3, s4 float64
	switch d {
	case 2:
		for wi, word := range ext.Words() {
			base := wi * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				row := data[(base+b)*2:]
				s0 += row[0]
				s1 += row[1]
				cnt++
			}
		}
	case 3:
		for wi, word := range ext.Words() {
			base := wi * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				row := data[(base+b)*3:]
				s0 += row[0]
				s1 += row[1]
				s2 += row[2]
				cnt++
			}
		}
	case 4:
		for wi, word := range ext.Words() {
			base := wi * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				row := data[(base+b)*4:]
				s0 += row[0]
				s1 += row[1]
				s2 += row[2]
				s3 += row[3]
				cnt++
			}
		}
	case 5:
		for wi, word := range ext.Words() {
			base := wi * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				row := data[(base+b)*5:]
				s0 += row[0]
				s1 += row[1]
				s2 += row[2]
				s3 += row[3]
				s4 += row[4]
				cnt++
			}
		}
	default:
		panic("si: sumRowsSmallD out of range")
	}
	yhat[0] = s0
	yhat[1] = s1
	if d > 2 {
		yhat[2] = s2
	}
	if d > 3 {
		yhat[3] = s3
	}
	if d > 4 {
		yhat[4] = s4
	}
	return cnt
}

// finish turns accumulated sufficient statistics (w.yhat holds the raw
// target sum) into SI/IC. The per-group accumulation of µ_I (and Σ_I on
// the general path) visits the intersected groups in ascending model
// order skipping empty ones — the exact float operation sequence of the
// naive SubgroupMeanMarginal-based path, so both agree bit-for-bit.
//
// With a touched bitmap (the worker path), only the groups the
// extension intersects are visited — a trailing-zeros walk that yields
// ascending order for free — and every visited count slot and bitmap
// word is cleared on the way, maintaining the worker-scratch invariant
// without a per-candidate O(#groups) memset. The stat-table path passes
// touched=nil (caller-owned dense counts, must not be modified) and
// scans all slots.
func (w *LocationWorker) finish(counts []int32, cnt, numConds int, touched []uint64) (si, ic float64, yhat mat.Vec, ok bool) {
	s := w.s
	d := s.d
	yhat = w.yhat
	yhat.Scale(1 / float64(cnt))

	muI := w.muI
	cov := w.cov
	mus := s.mus
	if cov == nil && d == 1 {
		// Shared-Σ single-target fast path: the group loop collapses to
		// one fused multiply-add over the flat mean array.
		var mu0 float64
		if touched != nil {
			for wi, word := range touched {
				if word == 0 {
					continue
				}
				base := wi * 64
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &= word - 1
					gi := base + b
					mu0 += float64(counts[gi]) * mus[gi]
					counts[gi] = 0
				}
				touched[wi] = 0
			}
		} else {
			for gi, c := range counts {
				if c != 0 {
					mu0 += float64(c) * mus[gi]
				}
			}
		}
		muI[0] = mu0
	} else {
		for j := range muI {
			muI[j] = 0
		}
		if cov != nil {
			// Only the lower triangle is maintained: Cholesky.Factor is
			// documented to read nothing else, so the upper half of the
			// Σ_I accumulation (it is symmetric) would be dead work.
			for r := 0; r < d; r++ {
				zr := cov.Data[r*d : r*d+r+1]
				for j := range zr {
					zr[j] = 0
				}
			}
		}
		acc := func(gi int, wt float64) {
			mu := mus[gi*d : (gi+1)*d]
			for j, v := range mu {
				muI[j] += wt * v
			}
			if cov != nil {
				sig := s.groups[gi].Sigma.Data
				for r := 0; r < d; r++ {
					src := sig[r*d : r*d+r+1]
					dst := cov.Data[r*d : r*d+r+1]
					for c, v := range src {
						dst[c] += wt * v
					}
				}
			}
		}
		if touched != nil {
			for wi, word := range touched {
				if word == 0 {
					continue
				}
				base := wi * 64
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &= word - 1
					gi := base + b
					acc(gi, float64(counts[gi]))
					counts[gi] = 0
				}
				touched[wi] = 0
			}
		} else {
			for gi, c := range counts {
				if c != 0 {
					acc(gi, float64(c))
				}
			}
		}
	}
	muI.Scale(1 / float64(cnt))

	diff := w.diff
	for j := range diff {
		diff[j] = yhat[j] - muI[j]
	}
	if s.shared != nil {
		// Σ_I = Σ/|I|: log|Σ_I| = log|Σ| − d·log|I|, Mahal scales by |I|.
		mahal := float64(cnt) * s.shared.MahalanobisSq(w.sol, diff)
		ic = 0.5 * (float64(d)*math.Log(2*math.Pi) + s.logDetS -
			float64(d)*math.Log(float64(cnt)) + mahal)
	} else {
		inv := 1 / float64(cnt*cnt)
		for r := 0; r < d; r++ {
			sr := cov.Data[r*d : r*d+r+1]
			for c := range sr {
				sr[c] *= inv
			}
		}
		if err := w.chol.Factor(cov); err != nil {
			return 0, 0, nil, false
		}
		mahal := w.chol.MahalanobisSq(w.sol, diff)
		ic = 0.5 * (float64(d)*math.Log(2*math.Pi) + w.chol.LogDet() + mahal)
	}
	return ic / s.P.DL(numConds, false), ic, yhat, true
}

// NewBoundWorker implements engine.BoundScorer. The bound exploits the
// shared-Σ IC form: for a subgroup c of size k,
//
//	IC = ½(d·log2π + log|Σ| − d·log k + k·δᵀΣ⁻¹δ),  δ = (1/k)·Σ_{i∈c} zᵢ,
//
// with residuals zᵢ = yᵢ − µ_{g(i)}. Everything but the Mahalanobis
// term depends only on k, so an upper bound on k·δᵀΣ⁻¹δ over all
// k-subsets of a parent extension bounds the IC — and dividing by the
// exact DL(numConds) bounds the SI.
//
//   - d = 1: k·δ²/σ² = S²/(k·σ²) with S = Σ_{i∈c} zᵢ. Over k-subsets,
//     |S| is maximized by the k largest or the k most negative parent
//     residuals — O(1) from prefix sums of the sorted residuals.
//   - d ≥ 2: ‖L⁻¹δ‖ ≤ (1/k)·Σ‖L⁻¹zᵢ‖ (triangle inequality), so with
//     rᵢ = √(zᵢᵀΣ⁻¹zᵢ) precomputed per point, k·δᵀΣ⁻¹δ ≤ R(k)²/k where
//     R(k) is the top-k residual-norm sum of the parent.
//
// The triangle inequality loosens with dimension (and the per-point
// Mahalanobis norms cost d² each to precompute), so bounds are offered
// only for d ≤ 8; without a shared Σ the IC has no such form at all.
// Both cases return nil and the evaluator scores everything.
func (s *LocationScorer) NewBoundWorker() engine.BoundWorker {
	if s.shared == nil || s.d > 8 {
		return nil
	}
	s.boundOnce.Do(func() {
		n := len(s.labels)
		d := s.d
		vals := make([]float64, n)
		if d == 1 {
			for i := 0; i < n; i++ {
				vals[i] = s.Y.Data[i] - s.mus[s.labels[i]]
			}
			l0 := s.shared.L[0]
			s.boundInvVar = 1 / (l0 * l0)
		} else {
			z := make(mat.Vec, d)
			sol := make(mat.Vec, d)
			for i := 0; i < n; i++ {
				row := s.Y.Data[i*d : (i+1)*d]
				mu := s.mus[int(s.labels[i])*d:]
				for j, v := range row {
					z[j] = v - mu[j]
				}
				vals[i] = math.Sqrt(s.shared.MahalanobisSq(sol, z))
			}
		}
		s.boundVals = vals
	})
	return &locationBoundWorker{s: s}
}

// locationBoundWorker prepares per-parent sorted residual prefix sums
// and answers O(1) size-k SI bounds. Single-goroutine, engine-owned.
type locationBoundWorker struct {
	s      *LocationScorer
	vals   []float64 // parent residuals, sorted ascending
	prefix []float64 // prefix[i] = Σ vals[:i]
	slack  float64   // summation-error allowance, see Prepare
}

// Prepare implements engine.BoundWorker: gathers the parent's
// residuals, sorts them and builds prefix sums so BoundSI answers any
// subset size in O(1). Reports false (no bound available) for a nil or
// empty parent.
func (w *locationBoundWorker) Prepare(parent *bitset.Set) bool {
	if parent == nil {
		return false
	}
	resid := w.s.boundVals
	vals := w.vals[:0]
	absSum := 0.0
	for wi, word := range parent.Words() {
		base := wi * 64
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			v := resid[base+b]
			vals = append(vals, v)
			absSum += math.Abs(v)
		}
	}
	w.vals = vals
	m := len(vals)
	if m == 0 {
		return false
	}
	sort.Float64s(vals)
	if cap(w.prefix) < m+1 {
		w.prefix = make([]float64, m+1)
	}
	prefix := w.prefix[:m+1]
	prefix[0] = 0
	run := 0.0
	for i, v := range vals {
		run += v
		prefix[i+1] = run
	}
	w.prefix = prefix
	// Any subset sum recovered from the prefix array carries at most
	// m·ε·Σ|vᵢ| of accumulated rounding; adding it keeps the extremal
	// sums admissible. (The evaluator adds its own relative inflation on
	// the SI for the remaining algebra.)
	w.slack = float64(m) * 4e-16 * absSum
	return true
}

// BoundSI implements engine.BoundWorker.
func (w *locationBoundWorker) BoundSI(size, numConds int) float64 {
	s := w.s
	prefix := w.prefix
	m := len(prefix) - 1
	k := size
	if k > m {
		k = m
	}
	mx := prefix[m] - prefix[m-k] // largest k-subset sum
	if s.d == 1 {
		// Signed residuals: the most negative k-subset sum (the k
		// smallest residuals) can have the larger magnitude.
		if low := -prefix[k]; low > mx {
			mx = low
		}
	}
	mx += w.slack
	if mx < 0 {
		mx = 0
	}
	var mahal float64
	if s.d == 1 {
		mahal = mx * mx * s.boundInvVar / float64(k)
	} else {
		mahal = mx * mx / float64(k)
	}
	ic := 0.5 * (float64(s.d)*math.Log(2*math.Pi) + s.logDetS -
		float64(s.d)*math.Log(float64(k)) + mahal)
	return ic / s.P.DL(numConds, false)
}
