package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// The router is the cluster's single client-facing process: it speaks
// the same /api/v1 (and legacy /api) surface as one sisd-server, but
// consistent-hashes each session id onto a shard and reverse-proxies
// the call there. It holds no session state — routing is a pure
// function of (membership, health), so any number of router replicas,
// and a restarted router, agree on every assignment.
//
// Shard health drives two separate decisions:
//
//   - routing eligibility (who owns keys): ready, saturated and
//     degraded shards keep ownership. A degraded shard MUST keep its
//     sessions — its store writes are failing, so the freshest state
//     exists only in its memory and moving the key would resurrect a
//     stale snapshot. Draining and down shards lose ownership: a drain
//     flushed every session durably first, and a dead shard's committed
//     state reached the shared store on the commit path.
//   - load shedding: the router never queues. A request for a shard
//     whose mine queue is saturated is forwarded and the shard's own
//     503 queue_full + retryAfterMs propagates; when no shard at all is
//     eligible the router answers its own 503 with the same envelope
//     discipline.
//
// Ring changes migrate sessions by snapshot handoff. When a shard
// rejoins the eligible set, the router first asks each current owner to
// hand off (flush + evict) every live session the new ring assigns
// elsewhere, and only then publishes the new eligibility — so the new
// owner's restore-on-miss sees the freshest snapshot. Shard removals
// publish immediately; the failover walk re-homes their keys and the
// stale-write fence (server.storePut) keeps any lingering idle replica
// from clobbering the store later.

// State classifies one shard from the router's point of view, derived
// from its readyz probe (server.Readiness).
type State int32

const (
	// StateDown: probe failed, answered garbage, or the shard reported a
	// different shardId than configured (a miswired address is treated
	// as absent, not as someone else's shard).
	StateDown State = iota
	// StateReady: readyz 200.
	StateReady
	// StateSaturated: not ready only because the mine queue is full.
	StateSaturated
	// StateDegraded: persistence degraded; still owns its keys.
	StateDegraded
	// StateDraining: quiescing; ownership already moved on.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateSaturated:
		return "saturated"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	default:
		return "down"
	}
}

// eligible reports whether a shard in this state owns its ring keys.
func (s State) eligible() bool {
	return s == StateReady || s == StateSaturated || s == StateDegraded
}

// serving reports whether fan-out reads (session/job listings, drain)
// should include the shard. Draining shards still answer reads.
func (s State) serving() bool { return s != StateDown }

// Shard names one sisd-server process: its stable id (the value the
// shard was started with via -shard-id) and its base URL
// ("http://host:port", no trailing slash).
type Shard struct {
	ID  string
	URL string
}

// Options configures a Router.
type Options struct {
	Shards []Shard
	// VNodes per shard on the ring (<=0 → default).
	VNodes int
	// Client used for probes and proxied requests. Nil builds one on a
	// pooled keep-alive transport sized for the shard fan-out.
	Client *http.Client
	// ProbeInterval between health sweeps (<=0 → 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readyz probe (<=0 → 2s).
	ProbeTimeout time.Duration
	// Logf receives operational events (state transitions, handoffs).
	// Nil discards.
	Logf func(format string, args ...any)
}

type shardState struct {
	cfg   Shard
	state atomic.Int32
}

// Router implements http.Handler over the cluster.
type Router struct {
	opts   Options
	ring   *Ring
	byID   map[string]*shardState
	ids    []string // sorted
	client *http.Client
	logf   func(string, ...any)

	// eligible is the published ownership set, swapped atomically after
	// reconciliation so the request path never sees a half-migrated
	// ring. probeMu serializes probe sweeps (and their handoffs).
	eligible atomic.Pointer[map[string]bool]
	probeMu  sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRouter builds a router over a static shard membership. Call Start
// to begin health probing (until the first sweep completes, every shard
// counts as down) and Close to stop it.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 500 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	rt := &Router{
		opts: opts,
		byID: map[string]*shardState{},
		logf: opts.Logf,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if rt.logf == nil {
		rt.logf = func(string, ...any) {}
	}
	var ids []string
	for _, sh := range opts.Shards {
		sh.URL = strings.TrimRight(sh.URL, "/")
		if sh.ID == "" || sh.URL == "" {
			return nil, fmt.Errorf("cluster: shard needs both id and url (got id=%q url=%q)", sh.ID, sh.URL)
		}
		if _, dup := rt.byID[sh.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", sh.ID)
		}
		rt.byID[sh.ID] = &shardState{cfg: sh}
		ids = append(ids, sh.ID)
	}
	sort.Strings(ids)
	rt.ids = ids
	rt.ring = NewRing(ids, opts.VNodes)
	rt.client = opts.Client
	if rt.client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConns = 64 * len(ids)
		tr.MaxIdleConnsPerHost = 64
		tr.IdleConnTimeout = 90 * time.Second
		rt.client = &http.Client{Transport: tr}
	}
	empty := map[string]bool{}
	rt.eligible.Store(&empty)
	return rt, nil
}

// Start runs one synchronous probe sweep (so the router can route as
// soon as Start returns) and then sweeps in the background every
// ProbeInterval until Close.
func (rt *Router) Start() {
	rt.ProbeOnce(context.Background())
	go func() {
		defer close(rt.done)
		tick := time.NewTicker(rt.opts.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-tick.C:
				rt.ProbeOnce(context.Background())
			}
		}
	}()
}

// Close stops the probe loop. Safe to call multiple times; only valid
// after Start.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// state returns the last probed state of a shard.
func (rt *Router) state(id string) State {
	return State(rt.byID[id].state.Load())
}

// ProbeOnce sweeps every shard's readyz, reconciles session placement
// if the eligible set grew, and publishes the new eligibility. Exported
// so tests (and the load harness) can drive health transitions
// deterministically instead of sleeping for the probe interval.
func (rt *Router) ProbeOnce(ctx context.Context) {
	rt.probeMu.Lock()
	defer rt.probeMu.Unlock()

	states := make(map[string]State, len(rt.ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range rt.ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			st := rt.probe(ctx, rt.byID[id].cfg)
			mu.Lock()
			states[id] = st
			mu.Unlock()
		}(id)
	}
	wg.Wait()

	next := make(map[string]bool, len(states))
	var joiners []string
	old := *rt.eligible.Load()
	for id, st := range states {
		if prev := rt.state(id); prev != st {
			rt.logf("cluster: shard %s %s -> %s", id, prev, st)
		}
		if st.eligible() {
			next[id] = true
			if !old[id] {
				joiners = append(joiners, id)
			}
		}
	}
	// Reconcile-before-publish: hand off sessions the new ring assigns
	// away from their current shard while the OLD eligibility is still
	// live, so no request lands on the new owner before its snapshot is
	// flushed. Removals need no such barrier — publish handles them via
	// the failover walk.
	if len(joiners) > 0 {
		rt.reconcile(ctx, old, next)
	}
	for id, st := range states {
		rt.byID[id].state.Store(int32(st))
	}
	rt.eligible.Store(&next)
}

// probe classifies one shard from its readyz response.
func (rt *Router) probe(ctx context.Context, sh Shard) State {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", sh.URL+"/api/v1/readyz", nil)
	if err != nil {
		return StateDown
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return StateDown
	}
	defer resp.Body.Close()
	var ready server.Readiness
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ready); err != nil {
		return StateDown
	}
	if ready.ShardID != "" && ready.ShardID != sh.ID {
		rt.logf("cluster: shard %s at %s reports shardId %q — treating as down", sh.ID, sh.URL, ready.ShardID)
		return StateDown
	}
	switch {
	case resp.StatusCode == http.StatusOK && ready.Ready:
		return StateReady
	case resp.StatusCode != http.StatusServiceUnavailable:
		return StateDown
	}
	// 503 with a parsed Readiness: rank the reasons. Draining wins (the
	// shard is leaving), then degraded (it must keep ownership), then
	// saturation (transient load).
	var saturated, degraded bool
	for _, reason := range ready.Reasons {
		switch {
		case reason == "draining":
			return StateDraining
		case strings.HasPrefix(reason, "store degraded"):
			degraded = true
		case reason == "mine queue full":
			saturated = true
		}
	}
	if degraded {
		return StateDegraded
	}
	if saturated {
		return StateSaturated
	}
	return StateDown
}

// reconcile moves sessions whose ownership changes under the new
// eligibility: for every shard in the new set, list its live sessions
// and hand off (flush + evict) the ones the new ring assigns elsewhere.
// On a *rejoining* shard every live session is handed off, even ones
// the ring assigns to it: a shard back from a partition may hold stale
// replicas of sessions that advanced elsewhere while it was out, and
// handoff is exactly the cure — the stale flush is dropped by the
// stale-write fence and the evict forces a fresh restore from the
// store on the next touch. A handoff that fails (mine in flight, shard
// hiccup) is logged and left in place — publishing anyway is safe
// because committed state is already durable and the fence disarms the
// old replica; only uncommitted pending patterns (ephemeral by design)
// are at risk.
func (rt *Router) reconcile(ctx context.Context, old, next map[string]bool) {
	isNext := func(id string) bool { return next[id] }
	for id := range next {
		rejoining := !old[id]
		sh := rt.byID[id].cfg
		var infos []server.SessionInfo
		if err := rt.getJSON(ctx, sh.URL+"/api/v1/sessions", &infos); err != nil {
			rt.logf("cluster: reconcile: list %s: %v", id, err)
			continue
		}
		for _, inf := range infos {
			if inf.Persisted {
				continue // store-only: restore-on-miss needs no handoff
			}
			owner, ok := rt.ring.OwnerAmong(inf.ID, isNext)
			if !rejoining && (!ok || owner == id) {
				continue
			}
			if err := rt.postHandoff(ctx, sh, inf.ID); err != nil {
				rt.logf("cluster: handoff %s from %s to %s: %v", inf.ID, id, owner, err)
				continue
			}
			rt.logf("cluster: migrated session %s: %s -> %s", inf.ID, id, owner)
		}
	}
}

func (rt *Router) getJSON(ctx context.Context, url string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

func (rt *Router) postHandoff(ctx context.Context, sh Shard, id string) error {
	ctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", sh.URL+"/api/v1/sessions/"+id+"/handoff", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// owner resolves the shard currently owning a session id, or false when
// no shard is eligible.
func (rt *Router) owner(id string) (Shard, bool) {
	elig := *rt.eligible.Load()
	sid, ok := rt.ring.OwnerAmong(id, func(s string) bool { return elig[s] })
	if !ok {
		return Shard{}, false
	}
	return rt.byID[sid].cfg, true
}

// Handler returns the router's HTTP surface: the same routes a single
// sisd-server exposes, on both the /api/v1 mount and the legacy /api
// alias (error body shape follows the mount, like the server's).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/api/v1", "/api"} {
		mux.HandleFunc("POST "+prefix+"/sessions", rt.handleCreate)
		mux.HandleFunc("GET "+prefix+"/sessions", rt.handleList)
		mux.HandleFunc(prefix+"/sessions/{id}", rt.handleSession)
		mux.HandleFunc(prefix+"/sessions/{id}/{verb}", rt.handleSession)
		mux.HandleFunc("GET "+prefix+"/jobs", rt.handleJobList)
		mux.HandleFunc(prefix+"/jobs/{id}", rt.handleJob)
		mux.HandleFunc("GET "+prefix+"/healthz", rt.handleHealthz)
		mux.HandleFunc("GET "+prefix+"/readyz", rt.handleReadyz)
		mux.HandleFunc("POST "+prefix+"/drain", rt.handleDrain)
	}
	return mux
}

// writeErr mirrors the serving layer's two error shapes: /api/v1 gets
// the structured envelope, the legacy /api alias the flat body.
func writeErr(w http.ResponseWriter, r *http.Request, status int, code string, retryAfter time.Duration, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if !strings.HasPrefix(r.URL.Path, "/api/v1/") {
		_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
		return
	}
	body := map[string]any{"code": code, "message": msg}
	if retryAfter > 0 {
		body["retryAfterMs"] = retryAfter.Milliseconds()
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"error": body})
}

// errNoShard is the router's own 503: no shard is eligible to own the
// key right now. retryAfter matches the serving layer's degraded hint.
const noShardRetry = time.Second

func (rt *Router) writeNoShard(w http.ResponseWriter, r *http.Request) {
	writeErr(w, r, http.StatusServiceUnavailable, "no_shard", noShardRetry,
		"no shard available for this session")
}

// proxy forwards the request as-is to sh, streaming the body both ways
// and stamping X-Sisd-Shard so clients and the load harness can see
// placement. The shard's response — including its 503 back-pressure
// envelope — passes through untouched.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, sh Shard) {
	rt.proxyBody(w, r, sh, r.Body)
}

func (rt *Router) proxyBody(w http.ResponseWriter, r *http.Request, sh Shard, body io.Reader) {
	url := sh.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, body)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "internal", 0, "proxy: %v", err)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		// The shard died between probe sweeps. Surface it as a retryable
		// 502; the next sweep will fail it over.
		writeErr(w, r, http.StatusBadGateway, "shard_unreachable", noShardRetry,
			"shard %s: %v", sh.ID, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Sisd-Shard", sh.ID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// createRetries bounds fresh-id retries when a generated id collides
// (or races another create).
const createRetries = 3

// newSessionID generates a router-side session id. Ids must exist
// before placement — the ring maps id → shard — so the router, not the
// shard, mints them. 8 random bytes keep collisions out of reach; the
// "r" prefix keeps them visually distinct from shard-minted s0042 ids.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "r" + hex.EncodeToString(b[:]), nil
}

// handleCreate places a new session: parse the body, mint an id when
// the client didn't pin one, route by id, and forward. A collision on a
// router-minted id retries with a fresh one (a client-pinned id's 409
// passes through — the client chose the name, it owns the conflict).
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, "bad_request", 0, "read body: %v", err)
		return
	}
	var req server.CreateRequest
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			writeErr(w, r, http.StatusBadRequest, "bad_request", 0, "bad JSON: %v", err)
			return
		}
	}
	minted := req.ID == ""
	tries := 1
	if minted {
		tries = createRetries
	}
	for attempt := 0; attempt < tries; attempt++ {
		if minted {
			id, err := newSessionID()
			if err != nil {
				writeErr(w, r, http.StatusInternalServerError, "internal", 0, "mint id: %v", err)
				return
			}
			req.ID = id
		}
		body, err := json.Marshal(&req)
		if err != nil {
			writeErr(w, r, http.StatusInternalServerError, "internal", 0, "marshal: %v", err)
			return
		}
		sh, ok := rt.owner(req.ID)
		if !ok {
			rt.writeNoShard(w, r)
			return
		}
		url := sh.URL + r.URL.Path
		preq, err := http.NewRequestWithContext(r.Context(), "POST", url, bytes.NewReader(body))
		if err != nil {
			writeErr(w, r, http.StatusInternalServerError, "internal", 0, "proxy: %v", err)
			return
		}
		preq.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(preq)
		if err != nil {
			writeErr(w, r, http.StatusBadGateway, "shard_unreachable", noShardRetry,
				"shard %s: %v", sh.ID, err)
			return
		}
		if minted && resp.StatusCode == http.StatusConflict && attempt < tries-1 {
			resp.Body.Close()
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.Header().Set("X-Sisd-Shard", sh.ID)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
}

// handleSession routes every session-scoped call by its id.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sh, ok := rt.owner(id)
	if !ok {
		rt.writeNoShard(w, r)
		return
	}
	rt.proxy(w, r, sh)
}

// handleList fans the listing out to every serving shard and merges:
// live entries (stamped with their shard) win over persisted-only
// entries for the same id, and persisted-only duplicates (every shard
// sees the shared store) collapse to one.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type result struct {
		infos []server.SessionInfo
		err   error
	}
	results := make(map[string]*result, len(rt.ids))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, id := range rt.ids {
		if !rt.state(id).serving() {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			res := &result{}
			res.err = rt.getJSON(r.Context(), rt.byID[id].cfg.URL+"/api/v1/sessions", &res.infos)
			mu.Lock()
			results[id] = res
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	merged := map[string]server.SessionInfo{}
	for _, id := range rt.ids {
		res := results[id]
		if res == nil {
			continue
		}
		if res.err != nil {
			rt.logf("cluster: list %s: %v", id, res.err)
			continue
		}
		for _, inf := range res.infos {
			prev, seen := merged[inf.ID]
			if !seen || (prev.Persisted && !inf.Persisted) {
				merged[inf.ID] = inf
			}
		}
	}
	out := make([]server.SessionInfo, 0, len(merged))
	for _, inf := range merged {
		out = append(out, inf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleJobList merges every serving shard's job listing. Job ids are
// scoped to their pool, so concatenation is the correct merge.
func (rt *Router) handleJobList(w http.ResponseWriter, r *http.Request) {
	var all []json.RawMessage
	for _, id := range rt.ids {
		if !rt.state(id).serving() {
			continue
		}
		var jobs []json.RawMessage
		if err := rt.getJSON(r.Context(), rt.byID[id].cfg.URL+"/api/v1/jobs", &jobs); err != nil {
			rt.logf("cluster: jobs %s: %v", id, err)
			continue
		}
		all = append(all, jobs...)
	}
	if all == nil {
		all = []json.RawMessage{}
	}
	writeJSON(w, http.StatusOK, all)
}

// handleJob tries each serving shard in id order and relays the first
// non-404 answer — jobs are not ring-keyed, their pool is wherever the
// mine ran.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	for _, id := range rt.ids {
		if !rt.state(id).serving() {
			continue
		}
		sh := rt.byID[id].cfg
		url := sh.URL + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			resp.Body.Close()
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.Header().Set("X-Sisd-Shard", sh.ID)
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	writeErr(w, r, http.StatusNotFound, "not_found", 0, "no job %q on any shard", r.PathValue("id"))
}

// handleHealthz reports the router process plus each shard's last
// probed state — the operator's one-glance cluster view.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := map[string]string{}
	for _, id := range rt.ids {
		shards[id] = rt.state(id).String()
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "router", "shards": shards})
}

// handleReadyz: the router can take traffic iff at least one shard is
// eligible for ownership.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	elig := *rt.eligible.Load()
	eligible := make([]string, 0, len(elig))
	for id := range elig {
		eligible = append(eligible, id)
	}
	sort.Strings(eligible)
	code := http.StatusOK
	body := map[string]any{"ready": len(eligible) > 0, "eligible": eligible}
	if len(eligible) == 0 {
		code = http.StatusServiceUnavailable
		body["reasons"] = []string{"no eligible shards"}
	}
	writeJSON(w, code, body)
}

// handleDrain fans the drain out to every serving shard and returns the
// per-shard reports keyed by shard id.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	q := ""
	if r.URL.RawQuery != "" {
		q = "?" + r.URL.RawQuery
	}
	reports := map[string]json.RawMessage{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range rt.ids {
		if !rt.state(id).serving() {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sh := rt.byID[id].cfg
			req, err := http.NewRequestWithContext(r.Context(), "POST", sh.URL+"/api/v1/drain"+q, nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				mu.Lock()
				reports[id], _ = json.Marshal(map[string]string{"error": err.Error()})
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			if err != nil {
				return
			}
			mu.Lock()
			reports[id] = raw
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{"shards": reports})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
