package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/server"
)

// testShard is one in-process shard behind a blockable front: flipping
// block simulates a partition (the process is alive and holds its
// session memory, but the router cannot reach it) without the expense
// of real subprocesses — that end of the spectrum is covered by the
// loadgen cluster harness.
type testShard struct {
	id    string
	srv   *server.Server
	ts    *httptest.Server
	block atomic.Bool
}

func newTestCluster(t *testing.T, n int) (*Router, []*testShard) {
	t.Helper()
	store := server.NewMemStore()
	shards := make([]*testShard, n)
	cfgs := make([]Shard, n)
	for i := range shards {
		sh := &testShard{id: fmt.Sprintf("shard-%d", i)}
		sh.srv = server.NewWithOptions(server.Options{Store: store, ShardID: sh.id})
		inner := sh.srv.Handler()
		sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if sh.block.Load() {
				http.Error(w, "partitioned", http.StatusBadGateway)
				return
			}
			inner.ServeHTTP(w, r)
		}))
		shards[i] = sh
		cfgs[i] = Shard{ID: sh.id, URL: sh.ts.URL}
	}
	rt, err := NewRouter(Options{Shards: cfgs, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(t.Context())
	t.Cleanup(func() {
		for _, sh := range shards {
			sh.ts.Close()
			sh.srv.Close()
		}
	})
	return rt, shards
}

// call drives the router handler directly (no extra listener hop).
func call(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decode(t *testing.T, rec *httptest.ResponseRecorder, want int, out any) {
	t.Helper()
	if rec.Code != want {
		t.Fatalf("status %d, want %d; body %s", rec.Code, want, rec.Body)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v", rec.Body, err)
		}
	}
}

func canonMine(t *testing.T, m *server.MineResponse) string {
	t.Helper()
	c := *m
	c.Job = ""
	c.BoundEvals = 0
	c.Pruned = 0
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestRouterPlacement: creates land on the ring owner, session-scoped
// calls follow the id, placement is stamped in X-Sisd-Shard, and the
// merged listing attributes each live session to its shard.
func TestRouterPlacement(t *testing.T) {
	rt, _ := newTestCluster(t, 3)
	h := rt.Handler()
	ids := map[string]string{} // session → shard
	for i := 0; i < 8; i++ {
		var info server.SessionInfo
		rec := call(t, h, "POST", "/api/v1/sessions",
			server.CreateRequest{Dataset: "synthetic", Seed: int64(i + 1), Depth: 2, BeamWidth: 8})
		decode(t, rec, http.StatusCreated, &info)
		got := rec.Header().Get("X-Sisd-Shard")
		if want := rt.ring.Owner(info.ID); got != want {
			t.Fatalf("session %s created on %s, ring owner %s", info.ID, got, want)
		}
		if info.Shard != got {
			t.Fatalf("shard label %q != placement header %q", info.Shard, got)
		}
		ids[info.ID] = got
	}
	// Session-scoped calls land on the same shard.
	for id, shard := range ids {
		rec := call(t, h, "GET", "/api/v1/sessions/"+id+"/history", nil)
		decode(t, rec, http.StatusOK, nil)
		if got := rec.Header().Get("X-Sisd-Shard"); got != shard {
			t.Fatalf("history for %s went to %s, created on %s", id, got, shard)
		}
	}
	// Merged listing: every session appears exactly once, live, labeled.
	var listed []server.SessionInfo
	decode(t, call(t, h, "GET", "/api/v1/sessions", nil), http.StatusOK, &listed)
	seen := map[string]bool{}
	for _, inf := range listed {
		if seen[inf.ID] {
			t.Fatalf("session %s listed twice", inf.ID)
		}
		seen[inf.ID] = true
		if want, ours := ids[inf.ID]; ours {
			if inf.Persisted || inf.Shard != want {
				t.Fatalf("listing for %s: persisted=%v shard=%q, want live on %q",
					inf.ID, inf.Persisted, inf.Shard, want)
			}
		}
	}
	for id := range ids {
		if !seen[id] {
			t.Fatalf("session %s missing from merged listing", id)
		}
	}
	// Unknown session routes somewhere and passes the shard's 404 through
	// with the v1 envelope intact.
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	decode(t, call(t, h, "GET", "/api/v1/sessions/nope/history", nil), http.StatusNotFound, &env)
	if env.Error.Code != "not_found" {
		t.Fatalf("passthrough 404 code %q", env.Error.Code)
	}
}

// TestRouterFailoverAndRejoin is the migration property test at the
// router level: partition a shard and its sessions fail over (restored
// from the store, mining byte-identical results at the same model
// version); heal the partition and ownership returns home — including
// evicting the stale replica the partitioned shard kept in memory, so
// the homecoming session resumes from the freshest state, not a stale
// one.
func TestRouterFailoverAndRejoin(t *testing.T) {
	rt, shards := newTestCluster(t, 3)
	h := rt.Handler()

	// Create sessions until at least two land on shard-1 (the one we
	// will partition), committing one pattern each so the store holds
	// real progress.
	type sessRec struct {
		id    string
		home  string
		mine  string
		histo string
	}
	var victims, others []*sessRec
	for i := 0; i < 24 && len(victims) < 2; i++ {
		var info server.SessionInfo
		rec := call(t, h, "POST", "/api/v1/sessions",
			server.CreateRequest{Dataset: "synthetic", Seed: int64(100 + i), Depth: 2, BeamWidth: 8})
		decode(t, rec, http.StatusCreated, &info)
		s := &sessRec{id: info.ID, home: rec.Header().Get("X-Sisd-Shard")}
		decode(t, call(t, h, "POST", "/api/v1/sessions/"+s.id+"/mine", nil), http.StatusOK, nil)
		decode(t, call(t, h, "POST", "/api/v1/sessions/"+s.id+"/commit", nil), http.StatusOK, nil)
		var mine server.MineResponse
		decode(t, call(t, h, "POST", "/api/v1/sessions/"+s.id+"/mine", nil), http.StatusOK, &mine)
		s.mine = canonMine(t, &mine)
		s.histo = call(t, h, "GET", "/api/v1/sessions/"+s.id+"/history", nil).Body.String()
		if s.home == "shard-1" {
			victims = append(victims, s)
		} else {
			others = append(others, s)
		}
	}
	if len(victims) < 2 {
		t.Fatal("placement never hit shard-1; ring balance is broken")
	}

	// Partition shard-1. The next sweep fails it over.
	shards[1].block.Store(true)
	rt.ProbeOnce(t.Context())
	if got := rt.state("shard-1"); got != StateDown {
		t.Fatalf("blocked shard state %v, want down", got)
	}
	for _, s := range victims {
		var mine server.MineResponse
		rec := call(t, h, "POST", "/api/v1/sessions/"+s.id+"/mine", nil)
		decode(t, rec, http.StatusOK, &mine)
		fallback := rec.Header().Get("X-Sisd-Shard")
		if fallback == "shard-1" || fallback == "" {
			t.Fatalf("failover routed %s to %q", s.id, fallback)
		}
		if got := canonMine(t, &mine); got != s.mine {
			t.Fatalf("failover mine for %s diverged:\n was %s\n now %s", s.id, s.mine, got)
		}
		// Advance the session on the fallback shard so the partitioned
		// replica on shard-1 is now strictly stale.
		decode(t, call(t, h, "POST", "/api/v1/sessions/"+s.id+"/commit", nil), http.StatusOK, nil)
	}
	// Sessions homed elsewhere are untouched by the failover.
	for _, s := range others {
		rec := call(t, h, "GET", "/api/v1/sessions/"+s.id+"/history", nil)
		decode(t, rec, http.StatusOK, nil)
		if got := rec.Header().Get("X-Sisd-Shard"); got != s.home {
			t.Fatalf("unrelated session %s moved %s -> %s during failover", s.id, s.home, got)
		}
	}

	// Heal the partition. Rejoin must (a) route the victims home and
	// (b) discard shard-1's stale replicas — their history must include
	// the commit made on the fallback shard.
	shards[1].block.Store(false)
	rt.ProbeOnce(t.Context())
	if got := rt.state("shard-1"); got != StateReady {
		t.Fatalf("healed shard state %v, want ready", got)
	}
	for _, s := range victims {
		var hist []server.PatternJSON
		rec := call(t, h, "GET", "/api/v1/sessions/"+s.id+"/history", nil)
		decode(t, rec, http.StatusOK, &hist)
		if got := rec.Header().Get("X-Sisd-Shard"); got != "shard-1" {
			t.Fatalf("after rejoin %s served by %s, want shard-1", s.id, got)
		}
		if len(hist) != 2 {
			t.Fatalf("after rejoin %s has %d committed patterns, want 2 (stale replica served?)",
				s.id, len(hist))
		}
	}
}

// TestRouterNoEligibleShards: with every shard partitioned the router
// sheds with its own 503 — structured envelope on /api/v1, flat body on
// the legacy mount — and readyz goes not-ready.
func TestRouterNoEligibleShards(t *testing.T) {
	rt, shards := newTestCluster(t, 2)
	h := rt.Handler()
	for _, sh := range shards {
		sh.block.Store(true)
	}
	rt.ProbeOnce(t.Context())

	var env struct {
		Error struct {
			Code         string `json:"code"`
			RetryAfterMs int64  `json:"retryAfterMs"`
		} `json:"error"`
	}
	decode(t, call(t, h, "POST", "/api/v1/sessions", server.CreateRequest{Dataset: "synthetic"}),
		http.StatusServiceUnavailable, &env)
	if env.Error.Code != "no_shard" || env.Error.RetryAfterMs <= 0 {
		t.Fatalf("v1 shed envelope: %+v", env.Error)
	}
	var flat struct {
		Error string `json:"error"`
	}
	decode(t, call(t, h, "GET", "/api/sessions/x/history", nil), http.StatusServiceUnavailable, &flat)
	if flat.Error == "" {
		t.Fatal("legacy mount shed must use the flat error body")
	}
	var ready struct {
		Ready bool `json:"ready"`
	}
	decode(t, call(t, h, "GET", "/api/v1/readyz", nil), http.StatusServiceUnavailable, &ready)
	if ready.Ready {
		t.Fatal("router readyz claims ready with zero eligible shards")
	}
}

// TestRouterShardIDMismatch: a shard answering with the wrong shardId
// (a miswired address) is treated as down, not trusted with traffic.
func TestRouterShardIDMismatch(t *testing.T) {
	store := server.NewMemStore()
	srv := server.NewWithOptions(server.Options{Store: store, ShardID: "actually-b"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	rt, err := NewRouter(Options{Shards: []Shard{{ID: "a", URL: ts.URL}}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(t.Context())
	if got := rt.state("a"); got != StateDown {
		t.Fatalf("mismatched shard state %v, want down", got)
	}
}

// TestRouterDrainFanout: a cluster drain reaches every shard and the
// aggregated report carries one entry per shard.
func TestRouterDrainFanout(t *testing.T) {
	rt, shards := newTestCluster(t, 3)
	h := rt.Handler()
	decode(t, call(t, h, "POST", "/api/v1/sessions",
		server.CreateRequest{Dataset: "synthetic", Seed: 9}), http.StatusCreated, nil)
	var rep struct {
		Shards map[string]server.DrainReport `json:"shards"`
	}
	decode(t, call(t, h, "POST", "/api/v1/drain?timeoutMs=5000", nil), http.StatusOK, &rep)
	if len(rep.Shards) != len(shards) {
		t.Fatalf("drain reached %d shards, want %d", len(rep.Shards), len(shards))
	}
	for id, r := range rep.Shards {
		if !r.Draining {
			t.Fatalf("shard %s did not report draining", id)
		}
	}
	// Drained shards are no longer ownership-eligible.
	rt.ProbeOnce(t.Context())
	for _, sh := range shards {
		if got := rt.state(sh.id); got != StateDraining {
			t.Fatalf("post-drain state of %s: %v, want draining", sh.id, got)
		}
	}
}
