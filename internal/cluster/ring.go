// Package cluster is the horizontal scale-out tier: a stateless router
// consistent-hashes session ids onto N sisd-server shards, health-checks
// them through the serving layer's readyz probe, sheds load when a
// shard's mine queue saturates, and migrates sessions between shards by
// snapshot handoff over a shared Store. Nothing in this package touches
// mining state directly — correctness rides entirely on the properties
// the lower layers already guarantee: byte-identical snapshot restore
// (DESIGN.md §6), version-pinned mines (§10) and crash-safe durable
// snapshots (§11). See DESIGN.md §12 for the cluster architecture.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per shard. 64 vnodes keep the
// expected per-shard load imbalance for a random keyspace under ~12%
// while the ring stays small enough that construction and binary search
// are negligible next to one proxied request.
const defaultVNodes = 64

// Ring is a consistent-hash ring with static membership. Construction
// is deterministic in the membership *set*: the same shard ids produce
// the same ring (and hence the same session→shard assignment) in every
// process and across restarts, regardless of the order the ids were
// supplied in. That determinism is what lets a restarted router — or a
// second router instance — route every existing session to the shard
// that already holds it without any shared routing table.
type Ring struct {
	shards []string // sorted unique member ids
	vhash  []uint64 // vnode positions, sorted
	vshard []int    // vnode → index into shards, aligned with vhash
}

// NewRing builds a ring over the given shard ids with vnodesPerShard
// virtual nodes each (<= 0 selects the default). Duplicate ids collapse
// to one membership.
func NewRing(shards []string, vnodesPerShard int) *Ring {
	if vnodesPerShard <= 0 {
		vnodesPerShard = defaultVNodes
	}
	seen := map[string]bool{}
	var members []string
	for _, id := range shards {
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	sort.Strings(members)
	r := &Ring{shards: members}
	type vn struct {
		h     uint64
		shard int
	}
	vns := make([]vn, 0, len(members)*vnodesPerShard)
	for si, id := range members {
		for v := 0; v < vnodesPerShard; v++ {
			vns = append(vns, vn{hash64(fmt.Sprintf("%s#%d", id, v)), si})
		}
	}
	// Ties (astronomically rare with 64-bit FNV, but possible) break by
	// shard index — itself deterministic because members are sorted — so
	// two rings over the same membership can never disagree.
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].h != vns[j].h {
			return vns[i].h < vns[j].h
		}
		return vns[i].shard < vns[j].shard
	})
	r.vhash = make([]uint64, len(vns))
	r.vshard = make([]int, len(vns))
	for i, v := range vns {
		r.vhash[i] = v.h
		r.vshard[i] = v.shard
	}
	return r
}

// Shards returns the member ids, sorted.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// hash64 is FNV-1a followed by a splitmix64 finalizer. FNV is cheap and
// stable across processes and Go versions (unlike maphash, whose seed
// is per-process by design), but on the short, similar strings used
// here ("shard-0#17", "s0042") its raw output clusters enough to
// visibly imbalance the ring; the avalanche mix spreads those clusters
// over the full 64-bit space.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the shard owning key: the first vnode clockwise from
// the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	id, _ := r.OwnerAmong(key, nil)
	return id
}

// OwnerAmong returns the first shard clockwise from key's hash for
// which eligible reports true (nil means every member is eligible) —
// the failover walk: when a shard is down, its keys fall to their
// successors, and every other key keeps its owner. The second result is
// false when no member is eligible.
func (r *Ring) OwnerAmong(key string, eligible func(id string) bool) (string, bool) {
	if len(r.vhash) == 0 {
		return "", false
	}
	h := hash64(key)
	start := sort.Search(len(r.vhash), func(i int) bool { return r.vhash[i] >= h })
	tried := 0
	seen := make([]bool, len(r.shards))
	for i := 0; i < len(r.vhash) && tried < len(r.shards); i++ {
		si := r.vshard[(start+i)%len(r.vhash)]
		if seen[si] {
			continue
		}
		seen[si] = true
		tried++
		if eligible == nil || eligible(r.shards[si]) {
			return r.shards[si], true
		}
	}
	return "", false
}
