package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("s%06d", i)
	}
	return out
}

// TestRingDeterministicAcrossConstruction: the assignment is a pure
// function of the membership set — input order, duplicates and a fresh
// build (a router restart) all yield identical owners. This is the
// property that lets two router processes route without coordination.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	shards := []string{"shard-2", "shard-0", "shard-1", "shard-3"}
	a := NewRing(shards, 64)
	perm := []string{"shard-3", "shard-1", "shard-0", "shard-2", "shard-1"}
	b := NewRing(perm, 64)
	for _, k := range keys(5000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across construction order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingRemapFraction: removing one of N shards remaps exactly the
// removed shard's keys (~1/N of the keyspace) and no others; adding a
// shard remaps ~1/(N+1), all onto the new shard. This is the defining
// consistent-hashing property — a ring change migrates a bounded slice
// of sessions, not the whole population.
func TestRingRemapFraction(t *testing.T) {
	const n = 5
	const nkeys = 20000
	shards := make([]string, n)
	for i := range shards {
		shards[i] = fmt.Sprintf("shard-%d", i)
	}
	full := NewRing(shards, 64)
	ks := keys(nkeys)

	t.Run("remove", func(t *testing.T) {
		removed := "shard-2"
		smaller := NewRing([]string{"shard-0", "shard-1", "shard-3", "shard-4"}, 64)
		moved := 0
		for _, k := range ks {
			was, now := full.Owner(k), smaller.Owner(k)
			if was != removed && now != was {
				t.Fatalf("key %q moved %q→%q though %q was the shard removed", k, was, now, removed)
			}
			if was == removed {
				moved++
			}
		}
		assertNearFraction(t, moved, nkeys, 1.0/n)
	})

	t.Run("removal equals failover walk", func(t *testing.T) {
		// Marking a shard ineligible must agree with rebuilding the ring
		// without it: keys fail over to exactly the owner they would have
		// under the smaller membership, so a crash and a decommission
		// route identically.
		down := "shard-2"
		smaller := NewRing([]string{"shard-0", "shard-1", "shard-3", "shard-4"}, 64)
		alive := func(id string) bool { return id != down }
		for _, k := range ks {
			got, ok := full.OwnerAmong(k, alive)
			if !ok || got != smaller.Owner(k) {
				t.Fatalf("failover owner of %q = %q, want %q", k, got, smaller.Owner(k))
			}
		}
	})

	t.Run("add", func(t *testing.T) {
		bigger := NewRing(append(append([]string(nil), shards...), "shard-5"), 64)
		moved := 0
		for _, k := range ks {
			was, now := full.Owner(k), bigger.Owner(k)
			if now != was {
				if now != "shard-5" {
					t.Fatalf("key %q moved %q→%q, not onto the added shard", k, was, now)
				}
				moved++
			}
		}
		assertNearFraction(t, moved, nkeys, 1.0/(n+1))
	})
}

// assertNearFraction allows ±40% relative slack around the ideal
// fraction: with 64 vnodes per shard the per-shard load varies, but a
// naive mod-N hash would remap (N-1)/N ≈ 80% of keys here — orders of
// magnitude outside this band — so the test cleanly separates
// consistent hashing from rehash-everything.
func assertNearFraction(t *testing.T, moved, total int, ideal float64) {
	t.Helper()
	frac := float64(moved) / float64(total)
	if frac < ideal*0.6 || frac > ideal*1.4 {
		t.Fatalf("remapped fraction %.4f outside [%.4f, %.4f] (ideal %.4f)",
			frac, ideal*0.6, ideal*1.4, ideal)
	}
}

// TestRingBalance: with 64 vnodes the most and least loaded of 4 shards
// stay within a factor of two for a large random keyspace — not a tight
// bound, just a guard against a degenerate hash that piles everything
// onto one shard.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 0)
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	const nkeys = 40000
	for i := 0; i < nkeys; i++ {
		counts[r.Owner(fmt.Sprintf("k%x", rng.Int63()))]++
	}
	min, max := nkeys, 0
	for _, id := range r.Shards() {
		c := counts[id]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || max > 2*min {
		t.Fatalf("imbalanced ring: min %d max %d (%v)", min, max, counts)
	}
}

// TestRingEdgeCases: empty and single-member rings behave sanely.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	one := NewRing([]string{"only"}, 8)
	if got := one.Owner("anything"); got != "only" {
		t.Fatalf("single ring owner = %q", got)
	}
	if _, ok := one.OwnerAmong("k", func(string) bool { return false }); ok {
		t.Fatal("no eligible shard must report !ok")
	}
}
