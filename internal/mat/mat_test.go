package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive definite n×n matrix
// A = BᵀB + n·I, which is comfortably well-conditioned.
func randSPD(rng *rand.Rand, n int) *Dense {
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	return a
}

func randVec(rng *rand.Rand, n int) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, -5, 6}
	if got, want := v.Dot(w), 1.0*4-2*5+3*6; got != want {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
}

func TestVecNorm(t *testing.T) {
	v := Vec{3, 4}
	if got := v.Norm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestVecNormalize(t *testing.T) {
	v := Vec{3, 4}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-15 {
		t.Fatalf("Normalize: norm = %v, want 1", v.Norm())
	}
	z := Vec{0, 0}
	z.Normalize() // must not panic or produce NaN
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Normalize zero vector changed it: %v", z)
	}
}

func TestVecAddScaledSub(t *testing.T) {
	v := Vec{1, 2}
	v.AddScaled(2, Vec{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Fatalf("AddScaled = %v", v)
	}
	d := v.Sub(Vec{1, 2})
	if d[0] != 20 || d[1] != 40 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vec{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestDenseMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randSPD(rng, 5)
	p := a.Mul(Eye(5))
	if a.MaxAbsDiff(p) > 1e-14 {
		t.Fatalf("A·I differs from A by %v", a.MaxAbsDiff(p))
	}
}

func TestDenseTranspose(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if mt.R != 3 || mt.C != 2 {
		t.Fatalf("T dims = %dx%d", mt.R, mt.C)
	}
	if mt.At(0, 1) != 4 || mt.At(2, 0) != 3 {
		t.Fatalf("T content wrong: %v", mt.Data)
	}
}

func TestQuadFormMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randSPD(rng, n)
		w := randVec(rng, n)
		want := w.Dot(a.MulVec(w))
		got := a.QuadForm(w)
		if math.Abs(got-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("QuadForm = %v, want %v", got, want)
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := Eye(2)
	m.AddOuterScaled(3, Vec{1, 2}, Vec{4, 5})
	want := []float64{1 + 12, 15, 24, 1 + 30}
	for i, x := range want {
		if math.Abs(m.Data[i]-x) > 1e-15 {
			t.Fatalf("AddOuterScaled data = %v, want %v", m.Data, want)
		}
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		c, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("NewCholesky: %v", err)
		}
		// Rebuild L·Lᵀ and compare with A.
		l := NewDense(n, n)
		copy(l.Data, c.L)
		rec := l.Mul(l.T())
		if d := rec.MaxAbsDiff(a); d > 1e-9 {
			t.Fatalf("n=%d: L·Lᵀ differs from A by %v", n, d)
		}
	}
}

func TestCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		a := randSPD(rng, n)
		b := randVec(rng, n)
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("SolveSPD: %v", err)
		}
		r := a.MulVec(x).Sub(b)
		if r.Norm() > 1e-9*(1+b.Norm()) {
			t.Fatalf("residual norm %v too large", r.Norm())
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD for indefinite matrix")
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		inv, err := InverseSPD(a)
		if err != nil {
			t.Fatalf("InverseSPD: %v", err)
		}
		if d := a.Mul(inv).MaxAbsDiff(Eye(n)); d > 1e-8 {
			t.Fatalf("A·A⁻¹ differs from I by %v", d)
		}
	}
}

func TestLogDetMatchesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(7)
		a := randSPD(rng, n)
		ld, err := LogDetSPD(a)
		if err != nil {
			t.Fatalf("LogDetSPD: %v", err)
		}
		vals, _, err := SymEig(a)
		if err != nil {
			t.Fatalf("SymEig: %v", err)
		}
		var want float64
		for _, v := range vals {
			want += math.Log(v)
		}
		if math.Abs(ld-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("LogDet = %v, eig sum = %v", ld, want)
		}
	}
}

func TestSymEigReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		vals, vecs, err := SymEig(a)
		if err != nil {
			t.Fatalf("SymEig: %v", err)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
		// V·diag(vals)·Vᵀ == A.
		rec := vecs.Mul(Diag(vals)).Mul(vecs.T())
		if d := rec.MaxAbsDiff(a); d > 1e-8 {
			t.Fatalf("n=%d: V·Λ·Vᵀ differs from A by %v", n, d)
		}
		// Orthonormal columns.
		if d := vecs.T().Mul(vecs).MaxAbsDiff(Eye(n)); d > 1e-9 {
			t.Fatalf("VᵀV differs from I by %v", d)
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := Diag([]float64{1, 5, 3})
	vals, _, err := SymEig(a)
	if err != nil {
		t.Fatalf("SymEig: %v", err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

// Property: for any vector, solving against the identity returns the
// vector itself; quadratic form against identity is the squared norm.
func TestIdentityProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		v := make(Vec, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e8 {
				return true
			}
			v[i] = x
		}
		id := Eye(len(v))
		x, err := SolveSPD(id, v)
		if err != nil {
			return false
		}
		for i := range v {
			if math.Abs(x[i]-v[i]) > 1e-9*(1+math.Abs(v[i])) {
				return false
			}
		}
		q := id.QuadForm(v)
		return math.Abs(q-v.Dot(v)) <= 1e-9*(1+v.Dot(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky solve inverts MulVec on random SPD systems.
func TestSolveInvertsMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		a := randSPD(r, n)
		x := randVec(rng, n)
		b := a.MulVec(x)
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		return got.Sub(x).Norm() <= 1e-7*(1+x.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholesky16(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randSPD(rng, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky124(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := randSPD(rng, 124)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEig16(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}
