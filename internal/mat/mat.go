// Package mat provides the dense linear algebra needed by the subgroup
// discovery library: column vectors, square symmetric matrices, Cholesky
// factorization, SPD solves and inverses, log-determinants, and a Jacobi
// eigendecomposition for symmetric matrices.
//
// The package replaces the MATLAB substrate used by the original paper
// implementation. It is deliberately small: matrices in this project are
// target-dimension × target-dimension (d ≤ a few hundred), so simple
// cache-friendly loops beat any blocking scheme we could write by hand.
//
// All matrices are row-major and dense. Operations never alias-check
// beyond what is documented; callers must not pass the receiver as an
// argument unless the method documents it as safe.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned by Cholesky-based routines when the input matrix
// is not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// Vec is a dense column vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product v·w. The vectors must have equal length.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// AddScaled sets v = v + a*w in place and returns v.
func (v Vec) AddScaled(a float64, w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic(fmt.Sprintf("mat: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale multiplies v by a in place and returns v.
func (v Vec) Scale(a float64) Vec {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Normalize scales v to unit Euclidean norm in place and returns v.
// A zero vector is left unchanged.
func (v Vec) Normalize() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dense is a dense row-major n×m matrix.
type Dense struct {
	R, C int
	Data []float64 // len == R*C, row-major
}

// NewDense returns a zero R×C matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Dense {
	n := len(d)
	m := NewDense(n, n)
	for i, x := range d {
		m.Data[i*n+i] = x
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Clone returns an independent copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) Vec { return Vec(m.Data[i*m.C : (i+1)*m.C]) }

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.R != src.R || m.C != src.C {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// AddScaled sets m = m + a*b in place. Dimensions must match.
func (m *Dense) AddScaled(a float64, b *Dense) {
	if m.R != b.R || m.C != b.C {
		panic("mat: AddScaled dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += a * b.Data[i]
	}
}

// Scale multiplies every element of m by a, in place.
func (m *Dense) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// MulVec returns m·v as a new vector. len(v) must equal m.C.
func (m *Dense) MulVec(v Vec) Vec {
	return m.MulVecInto(make(Vec, m.R), v)
}

// MulVecInto computes m·v into dst (len m.R, must not alias v) and
// returns it, with no allocations.
func (m *Dense) MulVecInto(dst Vec, v Vec) Vec {
	if len(v) != m.C {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %d vs %d", m.C, len(v)))
	}
	if len(dst) != m.R {
		panic("mat: MulVecInto destination length mismatch")
	}
	out := dst
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns m·b as a new matrix. m.C must equal b.R.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.C != b.R {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %d vs %d", m.C, b.R))
	}
	out := NewDense(m.R, b.C)
	for i := 0; i < m.R; i++ {
		mrow := m.Data[i*m.C : (i+1)*m.C]
		orow := out.Data[i*out.C : (i+1)*out.C]
		for k, a := range mrow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.C : (k+1)*b.C]
			for j, x := range brow {
				orow[j] += a * x
			}
		}
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Data[j*out.C+i] = m.Data[i*m.C+j]
		}
	}
	return out
}

// QuadForm returns wᵀ·m·w for square m.
func (m *Dense) QuadForm(w Vec) float64 {
	if m.R != m.C || len(w) != m.R {
		panic("mat: QuadForm dimension mismatch")
	}
	var s float64
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var ri float64
		for j, x := range row {
			ri += x * w[j]
		}
		s += w[i] * ri
	}
	return s
}

// AddOuterScaled sets m = m + a·(u vᵀ) in place for square or rectangular m.
func (m *Dense) AddOuterScaled(a float64, u, v Vec) {
	if len(u) != m.R || len(v) != m.C {
		panic("mat: AddOuterScaled dimension mismatch")
	}
	for i, ui := range u {
		if ui == 0 {
			continue
		}
		row := m.Data[i*m.C : (i+1)*m.C]
		f := a * ui
		for j, vj := range v {
			row[j] += f * vj
		}
	}
}

// Symmetrize replaces m with (m + mᵀ)/2. m must be square. It is used to
// remove the tiny asymmetries that accumulate in repeated rank-1 updates.
func (m *Dense) Symmetrize() {
	if m.R != m.C {
		panic("mat: Symmetrize needs a square matrix")
	}
	n := m.R
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// MaxAbsDiff returns the maximum absolute elementwise difference between
// m and b, for testing convergence.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	if m.R != b.R || m.C != b.C {
		panic("mat: MaxAbsDiff dimension mismatch")
	}
	var mx float64
	for i, x := range m.Data {
		d := math.Abs(x - b.Data[i])
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Cholesky holds the lower-triangular Cholesky factor L with A = L·Lᵀ.
type Cholesky struct {
	N int
	L []float64 // row-major lower triangle (full storage, upper part zero)
}

// NewCholesky factorizes the symmetric positive definite matrix a.
// Only the lower triangle of a is read. Returns ErrNotSPD if a pivot is
// not strictly positive.
func NewCholesky(a *Dense) (*Cholesky, error) {
	c := &Cholesky{}
	if err := c.Factor(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factor (re)factorizes a into the receiver, reusing the existing L
// storage when the dimensions match — the allocation-free path for
// scorers that refactorize a scratch covariance per candidate. On error
// the receiver's factorization is invalid and must not be used.
func (c *Cholesky) Factor(a *Dense) error {
	if a.R != a.C {
		return fmt.Errorf("mat: Cholesky needs a square matrix, got %dx%d", a.R, a.C)
	}
	n := a.R
	if len(c.L) != n*n {
		c.L = make([]float64, n*n)
	} else {
		// The algorithm writes every lower-triangle entry, but stale
		// strict-upper entries from a previous factorization must be
		// cleared (they are documented as zero).
		for i := 0; i < n; i++ {
			row := c.L[i*n+i+1 : (i+1)*n]
			for k := range row {
				row[k] = 0
			}
		}
	}
	c.N = n
	l := c.L
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*n+j]
			li := l[i*n : i*n+j]
			lj := l[j*n : j*n+j]
			for k := range li {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return ErrNotSPD
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return nil
}

// Solve returns x with A·x = b, overwriting nothing.
func (c *Cholesky) Solve(b Vec) Vec {
	return c.SolveInto(make(Vec, c.N), b)
}

// SolveInto solves A·x = b into dst (which may alias b) and returns it,
// with no allocations — the hot-path form used by the fused scorers.
func (c *Cholesky) SolveInto(dst, b Vec) Vec {
	if len(b) != c.N || len(dst) != c.N {
		panic("mat: Cholesky.Solve dimension mismatch")
	}
	n := c.N
	x := dst
	copy(x, b)
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		row := c.L[i*n : i*n+i]
		s := x[i]
		for k, lv := range row {
			s -= lv * x[k]
		}
		x[i] = s / c.L[i*n+i]
	}
	// Backward substitution Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.L[k*n+i] * x[k]
		}
		x[i] = s / c.L[i*n+i]
	}
	return x
}

// MahalanobisSq returns bᵀ·A⁻¹·b for the factorized A = L·Lᵀ as the
// squared norm of the half-solve y = L⁻¹b — a forward substitution plus
// a fused sum of squares, half the flops of SolveInto followed by a dot
// product. scratch must have length N; it may alias b (each yᵢ is
// written after bᵢ was read). This is the form every IC evaluation
// uses: the quadratic form is all they need from the solve.
func (c *Cholesky) MahalanobisSq(scratch, b Vec) float64 {
	if len(b) != c.N || len(scratch) != c.N {
		panic("mat: Cholesky.MahalanobisSq dimension mismatch")
	}
	n := c.N
	y := scratch
	var q float64
	for i := 0; i < n; i++ {
		row := c.L[i*n : i*n+i]
		s := b[i]
		// The subtracted dot product runs in four independent partial
		// sums: a single accumulator serializes on the 4-cycle FP-add
		// latency, which dominates every wide-target IC evaluation
		// (d=124 means ~7.7k multiply-adds per call). The fixed
		// (d0+d1)+(d2+d3) combine keeps the result deterministic and
		// scheduling-independent.
		yr := y[:len(row)]
		var d0, d1, d2, d3 float64
		k := 0
		for ; k+4 <= len(row); k += 4 {
			d0 += row[k] * yr[k]
			d1 += row[k+1] * yr[k+1]
			d2 += row[k+2] * yr[k+2]
			d3 += row[k+3] * yr[k+3]
		}
		for ; k < len(row); k++ {
			d0 += row[k] * yr[k]
		}
		s -= (d0 + d1) + (d2 + d3)
		s /= c.L[i*n+i]
		y[i] = s
		q += s * s
	}
	return q
}

// LogDet returns log|A| of the factorized matrix.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.N; i++ {
		s += math.Log(c.L[i*c.N+i])
	}
	return 2 * s
}

// Inverse returns A⁻¹ as a new dense matrix.
func (c *Cholesky) Inverse() *Dense {
	n := c.N
	inv := NewDense(n, n)
	e := make(Vec, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := c.Solve(e)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	inv.Symmetrize()
	return inv
}

// SolveSPD solves A·x = b for symmetric positive definite A.
func SolveSPD(a *Dense, b Vec) (Vec, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b), nil
}

// InverseSPD returns the inverse of a symmetric positive definite matrix.
func InverseSPD(a *Dense) (*Dense, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Inverse(), nil
}

// LogDetSPD returns log|A| for symmetric positive definite A.
func LogDetSPD(a *Dense) (float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return 0, err
	}
	return c.LogDet(), nil
}

// SymEig computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. It returns the eigenvalues in descending
// order and the matrix of corresponding eigenvectors stored as columns.
// The input is not modified.
func SymEig(a *Dense) (vals []float64, vecs *Dense, err error) {
	if a.R != a.C {
		return nil, nil, fmt.Errorf("mat: SymEig needs a square matrix, got %dx%d", a.R, a.C)
	}
	n := a.R
	w := a.Clone()
	w.Symmetrize()
	v := Eye(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.Data[i*n+j] * w.Data[i*n+j]
			}
		}
		if math.Sqrt(2*off) <= 1e-14*(1+frobNorm(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.Data[p*n+q]
				if apq == 0 {
					continue
				}
				app := w.Data[p*n+p]
				aqq := w.Data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				jacobiRotate(w, v, p, q, cth, sth)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.Data[i*n+i]
	}
	// Sort eigenvalues (and eigenvector columns) in descending order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small
		for j := i; j > 0 && vals[idx[j]] > vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for k, src := range idx {
		sortedVals[k] = vals[src]
		for i := 0; i < n; i++ {
			sortedVecs.Data[i*n+k] = v.Data[i*n+src]
		}
	}
	return sortedVals, sortedVecs, nil
}

func frobNorm(m *Dense) float64 {
	var s float64
	for _, x := range m.Data {
		s += x * x
	}
	return math.Sqrt(s)
}

// jacobiRotate applies the rotation G(p,q,θ) to w (two-sided) and
// accumulates it into v (one-sided).
func jacobiRotate(w, v *Dense, p, q int, c, s float64) {
	n := w.R
	for k := 0; k < n; k++ {
		wkp := w.Data[k*n+p]
		wkq := w.Data[k*n+q]
		w.Data[k*n+p] = c*wkp - s*wkq
		w.Data[k*n+q] = s*wkp + c*wkq
	}
	for k := 0; k < n; k++ {
		wpk := w.Data[p*n+k]
		wqk := w.Data[q*n+k]
		w.Data[p*n+k] = c*wpk - s*wqk
		w.Data[q*n+k] = s*wpk + c*wqk
	}
	for k := 0; k < n; k++ {
		vkp := v.Data[k*n+p]
		vkq := v.Data[k*n+q]
		v.Data[k*n+p] = c*vkp - s*vkq
		v.Data[k*n+q] = s*vkp + c*vkq
	}
}
