package randx

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/stats"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestGammaMoments(t *testing.T) {
	src := New(1)
	for _, k := range []float64{0.5, 1, 2.5, 8} {
		var w stats.Welford
		for i := 0; i < 40000; i++ {
			w.Add(src.Gamma(k))
		}
		// Gamma(k, 1): mean k, variance k.
		if math.Abs(w.Mean()-k) > 0.08*k+0.02 {
			t.Fatalf("Gamma(%v) mean = %v", k, w.Mean())
		}
		if math.Abs(w.Var()-k) > 0.15*k+0.05 {
			t.Fatalf("Gamma(%v) var = %v", k, w.Var())
		}
	}
}

func TestBetaMoments(t *testing.T) {
	src := New(2)
	a, b := 2.0, 5.0
	var w stats.Welford
	for i := 0; i < 40000; i++ {
		x := src.Beta(a, b)
		if x < 0 || x > 1 {
			t.Fatalf("Beta sample %v outside [0,1]", x)
		}
		w.Add(x)
	}
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if math.Abs(w.Mean()-wantMean) > 0.01 {
		t.Fatalf("Beta mean = %v, want %v", w.Mean(), wantMean)
	}
	if math.Abs(w.Var()-wantVar) > 0.005 {
		t.Fatalf("Beta var = %v, want %v", w.Var(), wantVar)
	}
}

func TestBernoulli(t *testing.T) {
	src := New(3)
	n, ones := 20000, 0
	for i := 0; i < n; i++ {
		ones += src.Bernoulli(0.3)
	}
	p := float64(ones) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestMVNMoments(t *testing.T) {
	mu := mat.Vec{1, -2}
	sigma := mat.NewDense(2, 2)
	copy(sigma.Data, []float64{2, 0.8, 0.8, 1})
	mvn, err := NewMVN(mu, sigma)
	if err != nil {
		t.Fatalf("NewMVN: %v", err)
	}
	src := New(4)
	const n = 60000
	var m0, m1, c00, c01, c11 float64
	samples := make([]mat.Vec, n)
	for i := 0; i < n; i++ {
		samples[i] = mvn.Sample(src)
		m0 += samples[i][0]
		m1 += samples[i][1]
	}
	m0 /= n
	m1 /= n
	for _, s := range samples {
		d0, d1 := s[0]-m0, s[1]-m1
		c00 += d0 * d0
		c01 += d0 * d1
		c11 += d1 * d1
	}
	c00 /= n
	c01 /= n
	c11 /= n
	if math.Abs(m0-1) > 0.03 || math.Abs(m1+2) > 0.03 {
		t.Fatalf("MVN mean = (%v, %v)", m0, m1)
	}
	if math.Abs(c00-2) > 0.08 || math.Abs(c01-0.8) > 0.05 || math.Abs(c11-1) > 0.05 {
		t.Fatalf("MVN cov = [%v %v; %v %v]", c00, c01, c01, c11)
	}
}

func TestMVNRejectsNonSPD(t *testing.T) {
	sigma := mat.NewDense(2, 2)
	copy(sigma.Data, []float64{1, 2, 2, 1})
	if _, err := NewMVN(mat.Vec{0, 0}, sigma); err == nil {
		t.Fatal("expected error for indefinite covariance")
	}
}

func TestSimplex(t *testing.T) {
	src := New(5)
	for trial := 0; trial < 100; trial++ {
		v := src.Simplex([]float64{2, 3, 4, 1, 5})
		var s float64
		for _, x := range v {
			if x < 0 {
				t.Fatalf("negative simplex coordinate %v", x)
			}
			s += x
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("simplex sum = %v", s)
		}
	}
}
