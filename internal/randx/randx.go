// Package randx provides seeded random samplers used by the dataset
// replica generators: multivariate normals (via Cholesky), Gamma
// (Marsaglia–Tsang), Beta, Bernoulli and simplex-valued vote vectors.
//
// Everything is deterministic given the seed of the wrapped *rand.Rand,
// so the experiments, examples and benches all agree on the data.
package randx

import (
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Source wraps a math/rand generator with the distribution samplers this
// project needs beyond the standard library.
type Source struct {
	*rand.Rand
}

// New returns a deterministic Source for the given seed.
func New(seed int64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(seed))}
}

// Normal samples N(mu, sigma²).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.NormFloat64()
}

// Bernoulli samples {0,1} with success probability p.
func (s *Source) Bernoulli(p float64) int {
	if s.Float64() < p {
		return 1
	}
	return 0
}

// Gamma samples the Gamma(shape k, scale θ=1) distribution with the
// Marsaglia–Tsang squeeze method; for k < 1 the boosting trick
// X = Gamma(k+1)·U^(1/k) is applied.
func (s *Source) Gamma(k float64) float64 {
	if k <= 0 {
		panic("randx: Gamma needs shape > 0")
	}
	if k < 1 {
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return s.Gamma(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples the Beta(a, b) distribution via two Gamma draws.
func (s *Source) Beta(a, b float64) float64 {
	x := s.Gamma(a)
	y := s.Gamma(b)
	return x / (x + y)
}

// MVN is a sampler for a fixed multivariate normal N(mu, Sigma),
// factorized once at construction.
type MVN struct {
	mu   mat.Vec
	chol *mat.Cholesky
	d    int
}

// NewMVN prepares a sampler for N(mu, sigma). sigma must be symmetric
// positive definite.
func NewMVN(mu mat.Vec, sigma *mat.Dense) (*MVN, error) {
	c, err := mat.NewCholesky(sigma)
	if err != nil {
		return nil, err
	}
	return &MVN{mu: mu.Clone(), chol: c, d: len(mu)}, nil
}

// Sample draws one vector, using randomness from src.
func (m *MVN) Sample(src *Source) mat.Vec {
	z := make(mat.Vec, m.d)
	for i := range z {
		z[i] = src.NormFloat64()
	}
	// x = mu + L·z.
	out := m.mu.Clone()
	n := m.d
	for i := 0; i < n; i++ {
		row := m.chol.L[i*n : i*n+i+1]
		var s float64
		for k, lv := range row {
			s += lv * z[k]
		}
		out[i] += s
	}
	return out
}

// Simplex samples a vector on the probability simplex by normalizing
// independent Gamma(alpha_i) draws (i.e. a Dirichlet sample). Used to
// generate vote-share targets that sum to one.
func (s *Source) Simplex(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	var total float64
	for i, a := range alpha {
		out[i] = s.Gamma(a)
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Perm returns a random permutation of [0, n), deterministic in the seed.
func (s *Source) Perm(n int) []int { return s.Rand.Perm(n) }
