// Package jobs provides the asynchronous execution substrate of the
// serving layer: a bounded worker pool running named jobs with an
// explicit lifecycle (queued → running → done/failed/cancelled),
// per-job progress notes, deadline propagation via context, long-poll
// waiting, and retention-bounded bookkeeping of finished jobs.
//
// The HTTP server enqueues each mine call as a job so request handlers
// never block on a search budget: clients either wait (long-poll) or
// poll the job id. The pool bounds concurrent searches to a fixed
// worker count, so a burst of expensive mines degrades into queueing
// latency instead of unbounded goroutines competing for every core.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job lifecycle state.
type Status string

// Job lifecycle states. Terminal states are Done, Failed and Cancelled.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity — the server translates it to 503 so clients back off
// instead of piling goroutines onto an overloaded pool.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: pool closed")

// ErrDraining is returned by Submit after Drain began: the pool is
// finishing in-flight work but accepting nothing new.
var ErrDraining = errors.New("jobs: pool draining")

// Fn is the work a job performs. ctx carries the job's deadline (when
// one was set) and is cancelled by Cancel; long searches should pass
// the deadline into their own budget mechanism and check ctx between
// phases. progress publishes a human-readable note visible in the
// job's Info while it runs. The returned value becomes Info.Result.
type Fn func(ctx context.Context, progress func(note string)) (any, error)

// Job is one unit of asynchronous work. All fields are managed by the
// pool; read them through Info.
type Job struct {
	id    string
	label string

	mu       sync.Mutex
	status   Status
	note     string
	result   any
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time

	timeout time.Duration
	cancel  context.CancelFunc // non-nil while running
	fn      Fn
	done    chan struct{} // closed on reaching a terminal state

	// cancelReq is closed the moment cancellation is requested —
	// before the Fn has noticed its context and unwound. Watchers that
	// hold resources on a job's behalf (the server's session mine
	// slots) select on it to release immediately instead of waiting
	// out the Fn's next cancellation check.
	cancelReq    chan struct{}
	cancelOnce   bool // cancelReq closed; guarded by mu
	modelVersion uint64
}

// Info is the externally visible snapshot of a job, JSON-ready.
type Info struct {
	ID       string     `json:"id"`
	Label    string     `json:"label,omitempty"`
	Status   Status     `json:"status"`
	Note     string     `json:"note,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// DurationMS is wall time from start to finish (or to now while
	// running), in milliseconds.
	DurationMS int64 `json:"durationMs,omitempty"`
	// ModelVersion is the background-model version the job ran against,
	// when the job recorded one (see RecordModelVersion); 0 otherwise.
	ModelVersion uint64 `json:"modelVersion,omitempty"`
	// Result is the job's return value once Status is done.
	Result any `json:"result,omitempty"`
}

func (j *Job) snapshot() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	inf := Info{
		ID:           j.id,
		Label:        j.label,
		Status:       j.status,
		Note:         j.note,
		Error:        j.errMsg,
		Created:      j.created,
		ModelVersion: j.modelVersion,
		Result:       j.result,
	}
	if !j.started.IsZero() {
		s := j.started
		inf.Started = &s
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		inf.DurationMS = end.Sub(j.started).Milliseconds()
	}
	if !j.finished.IsZero() {
		f := j.finished
		inf.Finished = &f
	}
	return inf
}

// ID returns the job's pool-unique identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// CancelRequested returns a channel closed as soon as cancellation is
// requested (Cancel or pool Close), which for a running job is before
// the Fn notices its cancelled context and the job reaches a terminal
// state. A queued job cancelled before starting closes Done and this
// channel together.
func (j *Job) CancelRequested() <-chan struct{} { return j.cancelReq }

// requestCancel closes cancelReq exactly once.
func (j *Job) requestCancel() {
	j.mu.Lock()
	if !j.cancelOnce {
		j.cancelOnce = true
		close(j.cancelReq)
	}
	j.mu.Unlock()
}

// ctxKey carries the *Job through its Fn's context.
type ctxKey struct{}

// RecordModelVersion annotates the job running under ctx with the
// background-model version it is reading, surfacing it in the job's
// Info (and the serving layer's job responses). No-op when ctx does
// not belong to a pool job.
func RecordModelVersion(ctx context.Context, version uint64) {
	j, _ := ctx.Value(ctxKey{}).(*Job)
	if j == nil {
		return
	}
	j.mu.Lock()
	j.modelVersion = version
	j.mu.Unlock()
}

// Pool runs submitted jobs on a fixed set of workers.
type Pool struct {
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for List and retention sweeps
	nextID   int
	closed   bool
	draining bool

	queue     chan *Job
	wg        sync.WaitGroup
	workers   int
	queueCap  int
	retention time.Duration // how long finished jobs stay visible
	maxDone   int           // cap on retained finished jobs
}

// Stats is a point-in-time load snapshot of the pool — the saturation
// signal readiness probes consume: Queued == QueueCap means the next
// Submit would be rejected with ErrQueueFull.
type Stats struct {
	Workers  int  `json:"workers"`
	QueueCap int  `json:"queueCap"`
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Draining bool `json:"draining,omitempty"`
}

// Saturated reports whether the pending queue is full (Submit would
// return ErrQueueFull).
func (s Stats) Saturated() bool { return s.Queued >= s.QueueCap }

// Stats reports current pool load.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	st := Stats{
		Workers:  p.workers,
		QueueCap: p.queueCap,
		Draining: p.draining,
	}
	for _, j := range p.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			st.Queued++
		case StatusRunning:
			st.Running++
		}
		j.mu.Unlock()
	}
	p.mu.Unlock()
	return st
}

// Option configures a Pool.
type Option func(*Pool)

// WithRetention bounds how long finished jobs stay queryable (default
// 10 minutes) and how many are retained regardless of age (default
// 1024). Whichever bound hits first evicts the oldest finished jobs.
func WithRetention(age time.Duration, maxFinished int) Option {
	return func(p *Pool) {
		if age > 0 {
			p.retention = age
		}
		if maxFinished > 0 {
			p.maxDone = maxFinished
		}
	}
}

// NewPool starts a pool with the given number of workers and pending
// queue capacity. Non-positive arguments get defaults (2 workers,
// queue 64).
func NewPool(workers, queueCap int, opts ...Option) *Pool {
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	p := &Pool{
		jobs:      map[string]*Job{},
		queue:     make(chan *Job, queueCap),
		workers:   workers,
		queueCap:  queueCap,
		retention: 10 * time.Minute,
		maxDone:   1024,
	}
	for _, o := range opts {
		o(p)
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Close stops accepting jobs, cancels everything queued, and waits for
// running jobs to finish (their contexts are cancelled first, so a
// deadline-aware Fn returns promptly).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	// Cancel queued jobs before closing the channel: workers skip
	// terminal jobs, so nothing still pending ever starts. Running jobs
	// get their contexts cancelled and unwind at their own pace.
	var queued, running []*Job
	var cancels []context.CancelFunc
	for _, j := range p.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusQueued:
			queued = append(queued, j)
		case StatusRunning:
			running = append(running, j)
			if j.cancel != nil {
				cancels = append(cancels, j.cancel)
			}
		}
		j.mu.Unlock()
	}
	p.mu.Unlock()
	for _, j := range queued {
		j.requestCancel()
		j.finish(StatusCancelled, nil, "pool closed")
	}
	for _, j := range running {
		j.requestCancel()
	}
	for _, c := range cancels {
		c()
	}
	close(p.queue)
	p.wg.Wait()
}

// Submit enqueues fn as a new job. timeout > 0 bounds the job's run
// time via its context deadline (measured from start, not submission).
// Returns ErrQueueFull when the pending queue is at capacity.
func (p *Pool) Submit(label string, timeout time.Duration, fn Fn) (*Job, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if p.draining {
		p.mu.Unlock()
		return nil, ErrDraining
	}
	p.nextID++
	j := &Job{
		id:        fmt.Sprintf("j%06d", p.nextID),
		label:     label,
		status:    StatusQueued,
		created:   time.Now(),
		timeout:   timeout,
		fn:        fn,
		done:      make(chan struct{}),
		cancelReq: make(chan struct{}),
	}
	// The non-blocking send happens under p.mu: Close sets closed and
	// closes the channel only after this critical section, so Submit can
	// never send on a closed queue.
	select {
	case p.queue <- j:
	default:
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
	p.jobs[j.id] = j
	p.order = append(p.order, j.id)
	p.sweepLocked()
	p.mu.Unlock()
	return j, nil
}

// Drain stops accepting new jobs (Submit returns ErrDraining) and
// waits until nothing is queued or running, or ctx is done. Unlike
// Close it cancels nothing: in-flight and already-queued jobs run to
// completion — the graceful half of shutdown, after which Close (which
// only has terminal jobs left to see) is instantaneous. Returns
// ctx.Err() if the deadline expired with work still in flight.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	const poll = 5 * time.Millisecond
	for {
		st := p.Stats()
		if st.Queued == 0 && st.Running == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.run(j)
	}
}

func (p *Pool) run(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx := context.WithValue(context.Background(), ctxKey{}, j)
	var cancel context.CancelFunc
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	fn := j.fn
	j.mu.Unlock()
	defer cancel()

	progress := func(note string) {
		j.mu.Lock()
		if j.status == StatusRunning {
			j.note = note
		}
		j.mu.Unlock()
	}
	result, err := runGuarded(fn, ctx, progress)
	switch {
	case err == nil:
		j.finish(StatusDone, result, "")
	case errors.Is(err, context.Canceled):
		j.finish(StatusCancelled, nil, "cancelled")
	default:
		j.finish(StatusFailed, nil, err.Error())
	}
}

// runGuarded invokes fn with panic containment: workers are not HTTP
// handler goroutines, so without a recover here a single panicking job
// would kill the whole process instead of failing that one job.
func runGuarded(fn Fn, ctx context.Context, progress func(string)) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("jobs: panic: %v", r)
		}
	}()
	return fn(ctx, progress)
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(status Status, result any, errMsg string) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	j.fn = nil // release captured state promptly
	j.cancel = nil
	j.mu.Unlock()
	close(j.done)
}

// Get returns the job's current snapshot; ok is false for unknown or
// already-evicted ids.
func (p *Pool) Get(id string) (Info, bool) {
	p.mu.Lock()
	j := p.jobs[id]
	p.mu.Unlock()
	if j == nil {
		return Info{}, false
	}
	return j.snapshot(), true
}

// Cancel requests cancellation: a queued job is cancelled immediately,
// a running job has its context cancelled (the Fn decides how fast it
// unwinds). ok is false for unknown ids; already-terminal jobs report
// ok without effect.
func (p *Pool) Cancel(id string) (Info, bool) {
	p.mu.Lock()
	j := p.jobs[id]
	p.mu.Unlock()
	if j == nil {
		return Info{}, false
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.mu.Unlock()
		j.requestCancel()
		j.finish(StatusCancelled, nil, "cancelled while queued")
	case StatusRunning:
		cancel := j.cancel
		j.mu.Unlock()
		j.requestCancel()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	return j.snapshot(), true
}

// Wait blocks until the job reaches a terminal state, maxWait elapses,
// or ctx is done, and returns the job's snapshot at that moment — the
// long-poll primitive behind GET /api/jobs/{id}?waitMs=...
func (p *Pool) Wait(ctx context.Context, id string, maxWait time.Duration) (Info, bool) {
	p.mu.Lock()
	j := p.jobs[id]
	p.mu.Unlock()
	if j == nil {
		return Info{}, false
	}
	if maxWait <= 0 {
		return j.snapshot(), true
	}
	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case <-j.done:
	case <-t.C:
	case <-ctx.Done():
	}
	return j.snapshot(), true
}

// List returns snapshots of all retained jobs, oldest first.
func (p *Pool) List() []Info {
	p.mu.Lock()
	p.sweepLocked()
	js := make([]*Job, 0, len(p.order))
	for _, id := range p.order {
		if j := p.jobs[id]; j != nil {
			js = append(js, j)
		}
	}
	p.mu.Unlock()
	out := make([]Info, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// sweepLocked evicts finished jobs past the retention age or count cap.
// Caller holds p.mu.
func (p *Pool) sweepLocked() {
	cutoff := time.Now().Add(-p.retention)
	finished := 0
	for _, id := range p.order {
		if j := p.jobs[id]; j != nil && j.isFinished() {
			finished++
		}
	}
	keep := p.order[:0]
	for _, id := range p.order {
		j := p.jobs[id]
		if j == nil {
			continue
		}
		if j.isFinished() && (j.finishedBefore(cutoff) || finished > p.maxDone) {
			delete(p.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	p.order = keep
}

func (j *Job) isFinished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

func (j *Job) finishedBefore(t time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.finished.IsZero() && j.finished.Before(t)
}
