package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until the job reaches want or the deadline passes.
func waitStatus(t *testing.T, p *Pool, id string, want Status) Info {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		inf, ok := p.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if inf.Status == want {
			return inf
		}
		if inf.Status.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %s while waiting for %s", id, inf.Status, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Info{}
}

func TestLifecycleDone(t *testing.T) {
	p := NewPool(2, 8)
	defer p.Close()
	j, err := p.Submit("double", 0, func(ctx context.Context, progress func(string)) (any, error) {
		progress("working")
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	inf, ok := p.Wait(context.Background(), j.ID(), time.Second)
	if !ok || inf.Status != StatusDone {
		t.Fatalf("wait = %+v ok=%v", inf, ok)
	}
	if inf.Result != 42 {
		t.Fatalf("result = %v", inf.Result)
	}
	if inf.Started == nil || inf.Finished == nil {
		t.Fatalf("missing timestamps: %+v", inf)
	}
}

func TestLifecycleFailed(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	j, _ := p.Submit("boom", 0, func(ctx context.Context, progress func(string)) (any, error) {
		return nil, errors.New("kaput")
	})
	inf, _ := p.Wait(context.Background(), j.ID(), time.Second)
	if inf.Status != StatusFailed || inf.Error != "kaput" {
		t.Fatalf("info = %+v", inf)
	}
}

func TestCancelQueued(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	block := make(chan struct{})
	first, _ := p.Submit("blocker", 0, func(ctx context.Context, progress func(string)) (any, error) {
		<-block
		return nil, nil
	})
	waitStatus(t, p, first.ID(), StatusRunning)
	// Second job sits in the queue behind the blocker.
	second, _ := p.Submit("victim", 0, func(ctx context.Context, progress func(string)) (any, error) {
		t.Error("cancelled queued job ran")
		return nil, nil
	})
	inf, ok := p.Cancel(second.ID())
	if !ok || inf.Status != StatusCancelled {
		t.Fatalf("cancel = %+v ok=%v", inf, ok)
	}
	close(block)
	waitStatus(t, p, first.ID(), StatusDone)
}

func TestCancelRunning(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	started := make(chan struct{})
	j, _ := p.Submit("obedient", 0, func(ctx context.Context, progress func(string)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if _, ok := p.Cancel(j.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	inf, _ := p.Wait(context.Background(), j.ID(), time.Second)
	if inf.Status != StatusCancelled {
		t.Fatalf("status = %s", inf.Status)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	j, _ := p.Submit("slow", 10*time.Millisecond, func(ctx context.Context, progress func(string)) (any, error) {
		d, ok := ctx.Deadline()
		if !ok {
			t.Error("no deadline on job context")
		}
		if until := time.Until(d); until > 10*time.Millisecond {
			t.Errorf("deadline too far out: %v", until)
		}
		<-ctx.Done()
		// A deadline-aware search would return partial results here; a
		// plain timeout surfaces as failed.
		return nil, ctx.Err()
	})
	inf, _ := p.Wait(context.Background(), j.ID(), time.Second)
	if inf.Status != StatusFailed {
		t.Fatalf("status = %s (want failed on deadline)", inf.Status)
	}
}

func TestQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	defer close(block)
	blocker := func(ctx context.Context, progress func(string)) (any, error) {
		<-block
		return nil, nil
	}
	run, _ := p.Submit("running", 0, blocker)
	waitStatus(t, p, run.ID(), StatusRunning)
	if _, err := p.Submit("queued", 0, blocker); err != nil {
		t.Fatalf("queue slot should be free: %v", err)
	}
	if _, err := p.Submit("overflow", 0, blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestWaitLongPoll(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()
	release := make(chan struct{})
	j, _ := p.Submit("slowish", 0, func(ctx context.Context, progress func(string)) (any, error) {
		<-release
		return "ok", nil
	})
	// Short wait returns a non-terminal snapshot.
	inf, ok := p.Wait(context.Background(), j.ID(), 10*time.Millisecond)
	if !ok || inf.Status.Terminal() {
		t.Fatalf("early wait = %+v", inf)
	}
	close(release)
	inf, _ = p.Wait(context.Background(), j.ID(), time.Second)
	if inf.Status != StatusDone || inf.Result != "ok" {
		t.Fatalf("final wait = %+v", inf)
	}
	// Unknown id.
	if _, ok := p.Wait(context.Background(), "zzz", 0); ok {
		t.Fatal("wait on unknown id reported ok")
	}
}

func TestRetentionSweep(t *testing.T) {
	p := NewPool(2, 64, WithRetention(time.Hour, 3))
	defer p.Close()
	noop := func(ctx context.Context, progress func(string)) (any, error) { return nil, nil }
	var last *Job
	for i := 0; i < 10; i++ {
		job, err := p.Submit(fmt.Sprintf("n%d", i), 0, noop)
		if err != nil {
			t.Fatal(err)
		}
		p.Wait(context.Background(), job.ID(), time.Second)
		last = job
	}
	list := p.List()
	if len(list) > 4 { // 3 retained finished + possibly the sweep-lag entry
		t.Fatalf("retained %d finished jobs, cap 3: %+v", len(list), list)
	}
	if _, ok := p.Get(last.ID()); !ok {
		t.Fatal("most recent job evicted")
	}
}

func TestCloseCancelsQueuedAndRunning(t *testing.T) {
	p := NewPool(1, 8)
	started := make(chan struct{})
	running, _ := p.Submit("running", 0, func(ctx context.Context, progress func(string)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	queued, _ := p.Submit("queued", 0, func(ctx context.Context, progress func(string)) (any, error) {
		t.Error("queued job ran after Close")
		return nil, nil
	})
	p.Close()
	if inf, _ := p.Get(running.ID()); inf.Status != StatusCancelled {
		t.Fatalf("running job after close: %s", inf.Status)
	}
	if inf, _ := p.Get(queued.ID()); inf.Status != StatusCancelled {
		t.Fatalf("queued job after close: %s", inf.Status)
	}
	noop := func(ctx context.Context, progress func(string)) (any, error) { return nil, nil }
	if _, err := p.Submit("late", 0, noop); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	p := NewPool(4, 256)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				job, err := p.Submit(fmt.Sprintf("g%d-%d", g, i), 0,
					func(ctx context.Context, progress func(string)) (any, error) {
						progress("busy")
						return g*100 + i, nil
					})
				if err != nil {
					errs <- err
					return
				}
				inf, ok := p.Wait(context.Background(), job.ID(), 5*time.Second)
				if !ok || inf.Status != StatusDone || inf.Result != g*100+i {
					errs <- fmt.Errorf("job %s: %+v", job.ID(), inf)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
