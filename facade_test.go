package sisd_test

import (
	"math"
	"strings"
	"testing"

	sisd "repro"
)

func TestReadARFFViaFacade(t *testing.T) {
	arff := `@relation demo
@attribute flag {no, yes}
@attribute score numeric
@data
no, 0.1
yes, 3.0
yes, 3.1
no, 0.2
yes, 2.9
no, 0.3
`
	ds, err := sisd.ReadARFF(strings.NewReader(arff), []string{"score"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sisd.NewMiner(ds, sisd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(loc.Intention.Format(ds), "flag") {
		t.Fatalf("top pattern = %v", loc.Intention.Format(ds))
	}
}

// TestSaveRestoreMinerViaFacade exercises the persistence primitives:
// a miner restored from a saved model mines exactly what the original
// would have.
func TestSaveRestoreMinerViaFacade(t *testing.T) {
	ds := sisd.GenerateSynthetic(620)
	cfg := sisd.Config{}
	cfg.Search.MaxDepth = 2
	m, err := sisd.NewMiner(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(false); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := sisd.SaveModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	m2, err := sisd.RestoreMiner(ds, cfg, strings.NewReader(buf.String()), m.Iteration())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Iteration() != m.Iteration() {
		t.Fatalf("iterations %d != %d", m2.Iteration(), m.Iteration())
	}
	want, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := m2.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if want.SI != got.SI || want.Intention.Format(ds) != got.Intention.Format(ds) {
		t.Fatalf("restored miner diverged: %v vs %v", got, want)
	}
}

func TestMineOptimalLocation1DViaFacade(t *testing.T) {
	ds := sisd.GenerateCrimeLike(1994)
	col := ds.TargetColumn(0)
	var mean, m2 float64
	for i, v := range col {
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
	}
	variance := m2 / float64(len(col))

	opt := sisd.MineOptimalLocation1D(ds, mean, variance,
		sisd.DefaultSIParams(), 1, 4, 2)
	if opt.Extension == nil || opt.SI <= 0 {
		t.Fatalf("optimal result = %+v", opt)
	}
	// At depth 1 the global optimum must match the beam's best
	// single-condition pattern (the beam evaluates all of them).
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	loc, _, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.SI-loc.SI) > 1e-6*(1+loc.SI) {
		t.Fatalf("B&B SI %v vs beam depth-1 SI %v", opt.SI, loc.SI)
	}
	if opt.Intention.Key() != loc.Intention.Key() {
		t.Fatalf("B&B %v vs beam %v",
			opt.Intention.Format(ds), loc.Intention.Format(ds))
	}
}
