// Package sisd is a standalone Go implementation of "Subjectively
// Interesting Subgroup Discovery on Real-valued Targets" (Lijffijt,
// Kang, Duivesteijn, Puolamäki, Oikarinen, De Bie — ICDE 2018,
// arXiv:1710.04521).
//
// The library finds subgroups of a dataset — described by conjunctions
// of conditions on arbitrarily-typed description attributes — whose
// real-valued target attributes are maximally informative to a specific
// user. Informativeness is measured by the Subjective Interestingness
// (SI) of the FORSIED framework: the information content of the pattern
// under a Maximum-Entropy background distribution representing the
// user's current beliefs, divided by the pattern's description length.
// Two pattern types are supported:
//
//   - location patterns: the subgroup's target mean is surprising;
//   - spread patterns: the subgroup's variance along a direction w in
//     target space is surprising (only shown after the location, which
//     is required to interpret it).
//
// After each pattern is shown, the background distribution is updated
// by information projection (Theorems 1 and 2 of the paper), so the
// next iteration automatically surfaces non-redundant patterns.
//
// The background model is versioned copy-on-write: every commit builds
// and atomically publishes the next immutable ModelVersion. Concurrent
// use follows from that — Miner.Snapshot pins a version, and MineAt /
// MineSpreadAt / ExplainLocationAt run lock-free against it while
// commits proceed, with results byte-identical to a serial run against
// the same version. Session persistence goes through SaveModel and
// Restore (RestoreOptions); the older positional RestoreMiner is
// deprecated but still works.
//
// # Quick start
//
//	ds := ...                      // *sisd.Dataset (see ReadCSV / generators)
//	m, err := sisd.NewMiner(ds, sisd.Config{})
//	loc, _, err := m.MineLocation()      // best location pattern
//	err = m.CommitLocation(loc)          // tell the model the user saw it
//	sp, err := m.MineSpread(loc)         // most surprising direction
//	err = m.CommitSpread(sp)
//
// Serving rides on top: cmd/sisd-server exposes sessions over HTTP
// (one interactive miner per session, durable snapshots), and
// cmd/sisd-router scales that horizontally — a stateless
// consistent-hash router places sessions on N server shards over a
// shared snapshot store and migrates them between shards by snapshot
// handoff (DESIGN.md §12). Snapshots themselves survive disk loss via
// the quorum-replicated store (repeatable -store-dir; DESIGN.md §13):
// writes need W of N replica directories, reads take the freshest of a
// read quorum and repair the rest, and a background anti-entropy sweep
// converges replicas that were down.
//
// See the examples/ directory for runnable end-to-end programs and
// DESIGN.md for the system inventory and the mapping from the paper's
// tables and figures to the benchmarks that regenerate them.
package sisd
