package sisd_test

import (
	"fmt"

	sisd "repro"
)

// ExampleNewMiner demonstrates the complete iterative mining loop on
// the paper's synthetic benchmark: mine, inspect, commit, repeat.
func ExampleNewMiner() {
	ds := sisd.GenerateSynthetic(620)
	m, err := sisd.NewMiner(ds, sisd.Config{
		SI:     sisd.SIParams{Gamma: 0.5, Eta: 1},
		Search: sisd.SearchParams{MaxDepth: 2},
	})
	if err != nil {
		panic(err)
	}
	for iter := 1; iter <= 3; iter++ {
		loc, _, err := m.MineLocation()
		if err != nil {
			panic(err)
		}
		fmt.Printf("iteration %d: %s (size %d)\n",
			iter, loc.Intention.Format(ds), loc.Size())
		if err := m.CommitLocation(loc); err != nil {
			panic(err)
		}
	}
	// Output:
	// iteration 1: a5 = '1' (size 40)
	// iteration 2: a3 = '1' (size 40)
	// iteration 3: a4 = '1' (size 40)
}

// ExampleDiverseTopK shows how to extract a portfolio of distinct
// subgroups from a single search log.
func ExampleDiverseTopK() {
	ds := sisd.GenerateSynthetic(620)
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 2},
	})
	if err != nil {
		panic(err)
	}
	_, log, err := m.MineLocation()
	if err != nil {
		panic(err)
	}
	for _, f := range sisd.DiverseTopK(log, 3, 0.5) {
		fmt.Printf("%s (size %d)\n", f.Intention.Format(ds), f.Size)
	}
	// Output:
	// a5 = '1' (size 40)
	// a3 = '1' (size 40)
	// a4 = '1' (size 40)
}
