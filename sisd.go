package sisd

import (
	"io"

	"repro/internal/background"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mat"
	"repro/internal/pattern"
	"repro/internal/search"
	"repro/internal/si"
	"repro/internal/spreadopt"
)

// Core data model.
type (
	// Dataset bundles typed description attributes with the real-valued
	// target matrix.
	Dataset = dataset.Dataset
	// Column is one description attribute.
	Column = dataset.Column
	// Kind classifies a description attribute (Numeric, Ordinal,
	// Categorical or Binary).
	Kind = dataset.Kind
)

// Description attribute kinds.
const (
	Numeric     = dataset.Numeric
	Ordinal     = dataset.Ordinal
	Categorical = dataset.Categorical
	Binary      = dataset.Binary
)

// Pattern syntax.
type (
	// Condition is a single condition on one description attribute.
	Condition = pattern.Condition
	// Intention is a conjunction of conditions describing a subgroup.
	Intention = pattern.Intention
	// LocationPattern is an intention plus the subgroup's target mean.
	LocationPattern = pattern.Location
	// SpreadPattern is an intention plus a unit direction in target
	// space and the subgroup's variance along it.
	SpreadPattern = pattern.Spread
	// Op is a condition operator (LE, GE, EQ).
	Op = pattern.Op
)

// Condition operators.
const (
	LE = pattern.LE
	GE = pattern.GE
	EQ = pattern.EQ
	NE = pattern.NE
)

// Mining engine.
type (
	// Miner is the iterative subgroup discovery engine. A Miner is safe
	// for one writer (Commit*) plus any number of concurrent readers:
	// Snapshot returns the immutable published model version, and MineAt
	// / MineSpreadAt / ExplainLocationAt run against such a version
	// without locking, unperturbed by commits that land meanwhile.
	Miner = core.Miner
	// ModelVersion is one immutable published version of a miner's
	// background model (copy-on-write: each commit builds and publishes
	// the next one). Obtain with Miner.Snapshot; mine against it with
	// Miner.MineAt. A version fully determines a mine's result — the
	// same version yields byte-identical patterns regardless of
	// concurrent commits.
	ModelVersion = background.ModelVersion
	// MineOptions tune one MineAt / MineSpreadAt call (currently the
	// search deadline) without mutating the miner's shared Config.
	MineOptions = core.MineOptions
	// Config bundles all mining parameters.
	Config = core.Config
	// IterationResult is the outcome of one full mining iteration.
	IterationResult = core.IterationResult
	// AttrExplanation compares a subgroup's observed target mean to the
	// background expectation, one target attribute at a time.
	AttrExplanation = core.AttrExplanation
	// SearchParams configure the beam search (width, depth, top-k, time
	// budget).
	SearchParams = search.Params
	// SearchResults is the log of a beam search (the top-k patterns).
	SearchResults = search.Results
	// SpreadParams configure the spread-direction optimizer.
	SpreadParams = spreadopt.Params
	// SIParams hold the description-length coefficients γ and η.
	SIParams = si.Params
	// Vec is a dense vector of float64 (target-space points and
	// directions).
	Vec = mat.Vec
)

// NewMiner builds a miner over the dataset. Zero-valued Config fields
// get the paper's defaults: empirical prior, γ=0.1, η=1, beam width 40,
// depth 4, top-150 log, 4 percentile split points.
func NewMiner(ds *Dataset, cfg Config) (*Miner, error) {
	return core.NewMiner(ds, cfg)
}

// ErrNoPattern is returned by mining calls when the search yields no
// scoreable pattern. When it accompanies a search log whose TimedOut
// flag is set, the time budget expired before anything was scored —
// a retry with a larger budget, not a dead end.
var ErrNoPattern = core.ErrNoPattern

// ReleaseDataset drops the cached condition language built for ds by
// previous searches. The cache is bounded (LRU), so calling this is
// optional; long-running processes mining a stream of large datasets
// should release each one when done with it to return the extension
// bitsets to the heap immediately.
func ReleaseDataset(ds *Dataset) { engine.EvictLanguage(ds) }

// SaveModel serializes a miner's belief state (the background model's
// group parameters and committed constraints) as JSON, stamped with
// the model version it serialized — so saved files can be matched
// against mine results annotated with a modelVersion. Together with
// Restore it is the session-persistence primitive: the dataset is not
// part of the snapshot (rebuild it deterministically from its source),
// only the evolving belief state is. SaveModel reads the live model
// and belongs to the writer; to export concurrently with commits, use
// m.Snapshot().SaveJSON instead.
func SaveModel(m *Miner, w io.Writer) error { return m.Model.SaveJSON(w) }

// RestoreOptions configure Restore. The zero value of Config gets the
// paper's defaults, like NewMiner.
type RestoreOptions struct {
	// Config for the rebuilt miner. Must match the configuration the
	// original miner ran with for restored mining to reproduce it.
	Config Config
	// SavedModel is the JSON belief state written by SaveModel.
	SavedModel io.Reader
	// Iterations is the committed iteration count the snapshot
	// represents (what Miner.Iteration reported when it was saved).
	Iterations int
}

// Restore rebuilds a miner over ds from a belief state saved with
// SaveModel. The model parameters are restored exactly (bit-identical
// floats, no constraint replay), so the restored miner mines exactly
// what the original would have — the property the HTTP server's
// session persistence is built on. The restored model's version stamp
// is the one SaveModel recorded (older files without a stamp derive it
// from the constraint count).
func Restore(ds *Dataset, opts RestoreOptions) (*Miner, error) {
	m, err := core.NewMiner(ds, opts.Config)
	if err != nil {
		return nil, err
	}
	model, err := background.LoadJSONExact(opts.SavedModel)
	if err != nil {
		return nil, err
	}
	if err := m.Restore(model, opts.Iterations); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoreMiner rebuilds a miner from a belief state saved with
// SaveModel.
//
// Deprecated: use Restore with RestoreOptions — the positional
// signature cannot grow new fields without breaking every caller.
func RestoreMiner(ds *Dataset, cfg Config, savedModel io.Reader, iterations int) (*Miner, error) {
	return Restore(ds, RestoreOptions{Config: cfg, SavedModel: savedModel, Iterations: iterations})
}

// OptimalResult is the outcome of the exact single-target search.
type OptimalResult = search.OptimalResult

// FoundPattern is one scored subgroup in a search log.
type FoundPattern = search.Found

// DiverseTopK selects up to k patterns from a search log such that no
// two extensions overlap by more than maxJaccard — a cheap portfolio of
// distinct subgroups from a single search (iterative Commit-based
// mining remains the principled non-redundancy mechanism).
func DiverseTopK(res *SearchResults, k int, maxJaccard float64) []FoundPattern {
	return search.DiverseTopK(res, k, maxJaccard)
}

// MineOptimalLocation1D finds the location pattern with globally
// maximal SI for a dataset with a single real-valued target, under a
// fresh background model with prior N(mu, sigma2), using branch-and-
// bound with a tight optimistic estimate — the exact search the paper
// leaves as future work (§V). Exponential in the worst case but heavily
// pruned in practice; beam search remains the default for large data.
func MineOptimalLocation1D(ds *Dataset, mu, sigma2 float64, p SIParams,
	maxDepth, numSplits, minSupport int) *OptimalResult {
	return search.OptimalLocation1D(ds, mu, sigma2, p, maxDepth, numSplits, minSupport)
}

// DefaultSIParams returns the paper's description-length coefficients
// (γ=0.1, η=1).
func DefaultSIParams() SIParams { return si.Default() }

// ReadCSV parses a dataset from CSV with "name:role:kind" headers (see
// Dataset.WriteCSV for the format).
func ReadCSV(r io.Reader) (*Dataset, error) { return dataset.ReadCSV(r) }

// ReadARFF parses a Weka/Cortana-style ARFF file; the attributes named
// in targets become the real-valued target columns, everything else a
// descriptor. The paper's original tooling (Cortana) consumes ARFF, so
// its datasets can be used directly.
func ReadARFF(r io.Reader, targets []string) (*Dataset, error) {
	return dataset.ReadARFF(r, targets)
}

// The dataset replicas used in the paper's evaluation (§III). All are
// deterministic in the seed; see DESIGN.md §3 for what each replica
// preserves of the original data.

// GenerateSynthetic builds the §III-A synthetic dataset: 620 points,
// two targets, three embedded 40-point clusters labeled by binary
// descriptors a3–a5 (a6, a7 are noise).
func GenerateSynthetic(seed int64) *Dataset { return gen.Synthetic620(seed).DS }

// GenerateCrimeLike builds the Communities & Crime replica
// (1994×122×1).
func GenerateCrimeLike(seed int64) *Dataset { return gen.CrimeLike(seed).DS }

// GenerateMammalsLike builds the European mammals atlas replica
// (2220×67×124).
func GenerateMammalsLike(seed int64) *Dataset { return gen.MammalsLike(seed).DS }

// GenerateSocioEconLike builds the German socio-economics replica
// (412×13×5).
func GenerateSocioEconLike(seed int64) *Dataset { return gen.SocioEconLike(seed).DS }

// GenerateWaterQualityLike builds the river water quality replica
// (1060×14×16).
func GenerateWaterQualityLike(seed int64) *Dataset { return gen.WaterQualityLike(seed).DS }
