package sisd_test

import "time"

func timeNowPlusMillis(ms int) time.Time {
	return time.Now().Add(time.Duration(ms) * time.Millisecond)
}
