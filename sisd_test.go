package sisd_test

import (
	"bytes"
	"math"
	"testing"

	sisd "repro"
)

// TestEndToEndIterativeMining exercises the full public API: generate
// data, mine iteratively, commit, explain.
func TestEndToEndIterativeMining(t *testing.T) {
	ds := sisd.GenerateSynthetic(620)
	m, err := sisd.NewMiner(ds, sisd.Config{
		SI:     sisd.SIParams{Gamma: 0.5, Eta: 1},
		Search: sisd.SearchParams{MaxDepth: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var prevSI float64 = math.Inf(1)
	seen := map[string]bool{}
	for iter := 0; iter < 3; iter++ {
		res, err := m.Step(true)
		if err != nil {
			t.Fatalf("Step %d: %v", iter, err)
		}
		loc := res.Location
		key := loc.Intention.Key()
		if seen[key] {
			t.Fatalf("pattern %s returned twice", loc.Intention.Format(ds))
		}
		seen[key] = true
		if loc.SI <= 0 {
			t.Fatalf("SI = %v", loc.SI)
		}
		// Later iterations are at most as interesting as earlier ones:
		// the model absorbs each pattern.
		if loc.SI > prevSI+1e-9 {
			t.Fatalf("SI increased across iterations: %v -> %v", prevSI, loc.SI)
		}
		prevSI = loc.SI
		if res.Spread == nil {
			t.Fatal("missing spread pattern")
		}
		expl, err := m.ExplainLocation(loc)
		if err != nil {
			t.Fatal(err)
		}
		if len(expl) != ds.Dy() {
			t.Fatalf("explanations = %d", len(expl))
		}
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	ds := sisd.GenerateSocioEconLike(412)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := sisd.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != ds.N() || got.Dx() != ds.Dx() || got.Dy() != ds.Dy() {
		t.Fatal("round trip changed dimensions")
	}
}

func TestScoreIntentionAPI(t *testing.T) {
	ds := sisd.GenerateSynthetic(620)
	m, err := sisd.NewMiner(ds, sisd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := sisd.Intention{{Attr: 0, Op: sisd.EQ, Level: 1}}
	loc, err := m.ScoreLocationIntention(in)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Size() != 40 {
		t.Fatalf("a3='1' size = %d", loc.Size())
	}
	if loc.SI <= 0 {
		t.Fatalf("SI = %v", loc.SI)
	}
}

func TestGeneratorsShapes(t *testing.T) {
	cases := []struct {
		name      string
		ds        *sisd.Dataset
		n, dx, dy int
	}{
		{"synthetic", sisd.GenerateSynthetic(1), 620, 5, 2},
		{"crime", sisd.GenerateCrimeLike(1), 1994, 122, 1},
		{"mammals", sisd.GenerateMammalsLike(1), 2220, 67, 124},
		{"socio", sisd.GenerateSocioEconLike(1), 412, 13, 5},
		{"water", sisd.GenerateWaterQualityLike(1), 1060, 14, 16},
	}
	for _, c := range cases {
		if c.ds.N() != c.n || c.ds.Dx() != c.dx || c.ds.Dy() != c.dy {
			t.Fatalf("%s dims = %d/%d/%d, want %d/%d/%d",
				c.name, c.ds.N(), c.ds.Dx(), c.ds.Dy(), c.n, c.dx, c.dy)
		}
		if err := c.ds.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
	}
}

func TestTimeBudget(t *testing.T) {
	// The paper supports "stop after N minutes"; the public API must
	// honor a deadline without erroring.
	ds := sisd.GenerateCrimeLike(2)
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A generous deadline lets at least level 1 finish.
	m.Cfg.Search.Deadline = timeNowPlusMillis(1500)
	loc, log, err := m.MineLocation()
	if err != nil {
		t.Fatal(err)
	}
	if loc == nil || log == nil {
		t.Fatal("no result under deadline")
	}
}
