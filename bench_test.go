// Benchmarks regenerating every table and figure of the paper's
// evaluation (§III). Each benchmark exercises exactly the workload of
// the corresponding experiment driver; `go test -bench=. -benchmem`
// reports how long one full regeneration takes. The structured results
// themselves are produced by cmd/experiments and recorded in
// EXPERIMENTS.md.
package sisd_test

import (
	"testing"

	sisd "repro"
	"repro/internal/experiments"
	"repro/internal/gen"
)

// BenchmarkFig1CrimeTopPattern regenerates Fig. 1: mine the top
// location pattern of the crime replica and compute the three KDE
// curves (full data, covered part, within-subgroup).
func BenchmarkFig1CrimeTopPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1Crime(gen.SeedCrime, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SyntheticIterations regenerates Fig. 2: three two-step
// mining iterations (location beam + spread gradient ascent + model
// updates) on the synthetic data.
func BenchmarkFig2SyntheticIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2Synthetic(gen.SeedSynthetic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableISyntheticSI regenerates Table I: track the SI of the
// top-10 first-iteration patterns across four iterations.
func BenchmarkTableISyntheticSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableISynthetic(gen.SeedSynthetic); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3NoiseRobustness regenerates Fig. 3: the SI of the true
// descriptions under descriptor noise, with the random-subgroup
// baseline.
func BenchmarkFig3NoiseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3Noise(gen.SeedSynthetic, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4to6MammalsIterations regenerates Figs. 4–6: three
// location-mining iterations on the mammals replica (124 binary
// targets), including the per-species explanations.
func BenchmarkFig4to6MammalsIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig456Mammals(gen.SeedMammals, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7and8SocioEconomics regenerates Figs. 7–8: three
// iterations of location + 2-sparse spread mining on the
// socio-economics replica.
func BenchmarkFig7and8SocioEconomics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig78SocioEconomics(gen.SeedSocio); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9and10WaterQuality regenerates Figs. 9–10: the top
// location pattern of the water replica plus its full-dimensional
// spread direction and CDF curves.
func BenchmarkFig9and10WaterQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig910Water(gen.SeedWater); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIBackgroundUpdates regenerates (a fast slice of) Table
// II: the per-iteration cost of refitting the background distribution
// as committed patterns accumulate, on the three smaller datasets.
func BenchmarkTableIIBackgroundUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIIRuntime(5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIBackgroundUpdatesMammals covers the Table II "Ma"
// column (dy=124), the paper's scalability pain point: location-pattern
// commits whose coordinate descent must factorize 124×124 covariances.
func BenchmarkTableIIBackgroundUpdatesMammals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIIRuntime(5, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineLocationCrime measures one full beam search on the
// largest-descriptor dataset (122 numeric attributes, n=1994).
func BenchmarkMineLocationCrime(b *testing.B) {
	ds := sisd.GenerateCrimeLike(gen.SeedCrime)
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 2, BeamWidth: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.MineLocation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMineLocationCrimeManyGroups measures the same beam search
// after 32 committed location patterns have fragmented the background
// model into many parameter groups — the interactive steady state the
// server is built for. Before the sufficient-statistics refactor every
// candidate paid one AND-popcount bitset pass per group, so this
// benchmark scaled with the commit count; the fused label-pass kernel
// makes it scale only with n.
func BenchmarkMineLocationCrimeManyGroups(b *testing.B) {
	ds := sisd.GenerateCrimeLike(gen.SeedCrime)
	m, err := sisd.NewMiner(ds, sisd.Config{
		Search: sisd.SearchParams{MaxDepth: 2, BeamWidth: 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < 32; c++ {
		in := sisd.Intention{{Attr: c, Op: sisd.LE, Threshold: 0.3}}
		loc, err := m.ScoreLocationIntention(in)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.CommitLocation(loc); err != nil {
			b.Fatal(err)
		}
	}
	if m.Model.NumGroups() < 32 {
		b.Fatalf("expected a many-groups model, got %d groups", m.Model.NumGroups())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.MineLocation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommitLocationMammals measures a single location-pattern
// commit at the paper's highest target dimensionality (dy=124).
func BenchmarkCommitLocationMammals(b *testing.B) {
	ds := sisd.GenerateMammalsLike(gen.SeedMammals)
	in := sisd.Intention{{Attr: 0, Op: sisd.LE, Threshold: 0}}
	ext := in.Extension(ds)
	if ext.Count() == 0 {
		b.Fatal("empty benchmark extension")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := sisd.NewMiner(ds, sisd.Config{})
		if err != nil {
			b.Fatal(err)
		}
		loc, err := m.ScoreLocationIntention(in)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.CommitLocation(loc); err != nil {
			b.Fatal(err)
		}
	}
}
